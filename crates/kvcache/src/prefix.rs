//! The prefix-cache tier: token-granularity KV reuse across requests.
//!
//! LoongServe's unified pool manages KV at token granularity (paper §6)
//! precisely so placement is decoupled from instance boundaries — but a
//! serving system that throws every conversation's KV away at completion
//! re-prefills the entire shared history on every follow-up turn. This
//! module adds a deterministic prefix index over that pool: when a request
//! finishes, its KV (prompt + generated tokens — exactly the next turn's
//! shared history) is *retained* in place under the finished request's id;
//! when a follow-up request of the same conversation starts its prefill,
//! the retained slots are *adopted* — renamed to the new request atomically,
//! with no copy and no free/alloc window — and only the uncached suffix is
//! prefilled.
//!
//! The index is a hash-chained prefix map: each conversation's prompt
//! stream is identified by a chain hash folded block-by-block
//! ([`PrefixCacheConfig::block_tokens`] tokens per block), so a retained
//! entry records both how many tokens it holds and the chain value that
//! prefix must hash to. Because turns in a conversation grow strictly
//! (turn *k+1*'s prompt extends turn *k*'s full context), a lookup either
//! matches the whole entry or nothing.
//!
//! Retention is ref-counted by *waiters*: a pending request of conversation
//! `c` pins `c`'s entry against watermark eviction until it either adopts
//! the entry or starts a full prefill. Eviction is LRU by simulated
//! retention time and runs under two triggers, both driven by the engine at
//! scheduling points:
//!
//! * **watermark** — device utilisation above
//!   [`PrefixCacheConfig::high_watermark`] evicts unpinned entries until it
//!   drops back (the watermark sits below the memory-pressure subsystem's
//!   low watermark, so retained prefixes never trip pressure eviction or
//!   pause admission by themselves);
//! * **head-of-queue headroom** — if the FCFS-head pending request cannot
//!   reserve its suffix + declared output, entries of *other* conversations
//!   are evicted (unpinned first, then pinned) until it can. Evicting the
//!   head's own entry is never useful: the tokens it would free equal the
//!   extra tokens the head would then have to prefill.
//!
//! The tier is strictly zero-cost when disabled: a pool without a
//! [`PrefixCache`] takes no new branches on any mutation path, and
//! cache-off engine runs reproduce the pinned golden digests bit for bit.

use loong_simcore::ids::{ConversationId, RequestId};
use loong_simcore::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Tunables of the prefix-cache tier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrefixCacheConfig {
    /// Device utilisation above which unpinned retained prefixes are
    /// evicted (LRU by retention time). Kept below the memory-pressure
    /// subsystem's low watermark (0.75) so retained KV never pauses
    /// admission or triggers pressure eviction of *active* requests.
    pub high_watermark: f64,
    /// Block granularity of the prefix hash chain, in tokens. Purely an
    /// index parameter — retention and adoption stay token-granular.
    pub block_tokens: u64,
}

impl Default for PrefixCacheConfig {
    fn default() -> Self {
        PrefixCacheConfig {
            high_watermark: 0.70,
            block_tokens: 64,
        }
    }
}

impl PrefixCacheConfig {
    /// Validates the watermark range and block size.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0 < self.high_watermark && self.high_watermark <= 1.0) {
            return Err(format!(
                "prefix-cache watermark must be in (0, 1], got {}",
                self.high_watermark
            ));
        }
        if self.block_tokens == 0 {
            return Err("prefix-cache block size must be positive".to_string());
        }
        Ok(())
    }
}

/// One retained prefix: the KV of a completed conversation turn, still
/// resident in the device pool under the finished request's id.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrefixEntry {
    /// The finished request whose slots hold the prefix.
    pub owner: RequestId,
    /// Tokens retained (the turn's full prompt + generated context).
    pub tokens: u64,
    /// Hash-chain value of the retained prefix blocks.
    pub chain: u64,
    /// Simulated time the entry was retained — the LRU eviction key.
    pub retained_at: SimTime,
}

/// The FCFS-head pending request's demand, used by headroom eviction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixDemand {
    /// The head request's conversation, if any (its own entry is protected).
    pub conversation: Option<ConversationId>,
    /// Prompt tokens the head still has to prefill, before any cache hit.
    pub remaining_input: u64,
    /// Output-bound slots the head's admission must reserve on top.
    pub reserve_output: u64,
}

/// The deterministic token-granularity prefix index over the unified pool.
///
/// Owned by [`crate::unified::UnifiedKvPool`] (the slots the entries name
/// live there); this type carries the index, the waiter pins and the
/// eviction policy. All maps are `BTreeMap`s so iteration — and therefore
/// eviction order — is deterministic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrefixCache {
    config: PrefixCacheConfig,
    entries: BTreeMap<ConversationId, PrefixEntry>,
    /// Pending requests per conversation that may still adopt its entry.
    waiters: BTreeMap<ConversationId, u32>,
    /// Running sum of retained tokens across all entries.
    retained_tokens: u64,
}

impl PrefixCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the config fails validation.
    pub fn new(config: PrefixCacheConfig) -> Self {
        config.validate().expect("valid prefix-cache config");
        PrefixCache {
            config,
            entries: BTreeMap::new(),
            waiters: BTreeMap::new(),
            retained_tokens: 0,
        }
    }

    /// The cache configuration.
    pub fn config(&self) -> PrefixCacheConfig {
        self.config
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns true if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total tokens currently retained across all entries.
    pub fn retained_tokens(&self) -> u64 {
        self.retained_tokens
    }

    /// The entry retained for `conversation`, if any.
    pub fn entry(&self, conversation: ConversationId) -> Option<&PrefixEntry> {
        self.entries.get(&conversation)
    }

    /// All retained entries in conversation-id order.
    pub fn entries(&self) -> impl Iterator<Item = (ConversationId, &PrefixEntry)> {
        self.entries.iter().map(|(&c, e)| (c, e))
    }

    /// The hash-chain value identifying the first `tokens` tokens of
    /// `conversation`'s prompt stream: an FNV-1a fold over complete blocks
    /// plus the trailing partial-block length. Retention computes it once;
    /// lookups recompute it and compare, so a corrupted index (an entry
    /// whose length no longer names a real prefix of the stream) can never
    /// be silently adopted.
    pub fn chain_hash(&self, conversation: ConversationId, tokens: u64) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ conversation.raw();
        let blocks = tokens / self.config.block_tokens;
        for b in 0..blocks {
            h ^= b.wrapping_add(0x9e37_79b9_7f4a_7c15);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^ (tokens % self.config.block_tokens)
    }

    /// Tokens a prompt of `prompt_len` tokens in `conversation` can reuse:
    /// the whole retained entry when it is a *strict* prefix of the prompt
    /// (at least one token must remain to prefill, so the prefill still
    /// produces the first output token), zero otherwise.
    pub fn match_len(&self, conversation: ConversationId, prompt_len: u64) -> u64 {
        match self.entries.get(&conversation) {
            Some(e) if e.tokens < prompt_len => {
                debug_assert_eq!(
                    e.chain,
                    self.chain_hash(conversation, e.tokens),
                    "prefix chain mismatch for {conversation}"
                );
                e.tokens
            }
            _ => 0,
        }
    }

    /// Pins `conversation`'s (current or future) entry for one more pending
    /// waiter.
    pub fn waiter_add(&mut self, conversation: ConversationId) {
        *self.waiters.entry(conversation).or_insert(0) += 1;
    }

    /// Releases one waiter pin on `conversation`.
    ///
    /// # Panics
    ///
    /// Panics if no waiter is registered (an engine bookkeeping bug).
    pub fn waiter_drop(&mut self, conversation: ConversationId) {
        let count = self
            .waiters
            .get_mut(&conversation)
            .expect("waiter_drop without matching waiter_add");
        *count -= 1;
        if *count == 0 {
            self.waiters.remove(&conversation);
        }
    }

    /// Number of waiter pins on `conversation`.
    pub fn waiters(&self, conversation: ConversationId) -> u32 {
        self.waiters.get(&conversation).copied().unwrap_or(0)
    }

    /// Records a retained entry, returning the entry it replaced (whose
    /// owner's slots the pool must release). Called by the pool wrapper,
    /// which owns the slot bookkeeping.
    pub(crate) fn insert(
        &mut self,
        conversation: ConversationId,
        owner: RequestId,
        tokens: u64,
        now: SimTime,
    ) -> Option<PrefixEntry> {
        let chain = self.chain_hash(conversation, tokens);
        let old = self.entries.insert(
            conversation,
            PrefixEntry {
                owner,
                tokens,
                chain,
                retained_at: now,
            },
        );
        self.retained_tokens += tokens;
        if let Some(old) = &old {
            self.retained_tokens -= old.tokens;
        }
        old
    }

    /// Removes and returns `conversation`'s entry (adoption or eviction).
    pub(crate) fn remove(&mut self, conversation: ConversationId) -> Option<PrefixEntry> {
        let entry = self.entries.remove(&conversation);
        if let Some(e) = &entry {
            self.retained_tokens -= e.tokens;
        }
        entry
    }

    /// The next eviction victim: the least-recently-retained entry, with
    /// pinned entries (live waiters) considered only when `allow_pinned`,
    /// and `protect` never considered. Ties break towards the lowest
    /// conversation id; the scan order is the `BTreeMap`'s, so the choice
    /// is deterministic.
    pub(crate) fn eviction_victim(
        &self,
        allow_pinned: bool,
        protect: Option<ConversationId>,
    ) -> Option<ConversationId> {
        let mut best: Option<(bool, SimTime, ConversationId)> = None;
        for (&conv, entry) in &self.entries {
            if protect == Some(conv) {
                continue;
            }
            let pinned = self.waiters(conv) > 0;
            if pinned && !allow_pinned {
                continue;
            }
            // Unpinned entries are always preferred over pinned ones, then
            // LRU by retention time, then lowest conversation id.
            let key = (pinned, entry.retained_at, conv);
            if best.map(|b| key < b).unwrap_or(true) {
                best = Some(key);
            }
        }
        best.map(|(_, _, conv)| conv)
    }

    /// Checks index invariants that do not need the pool: positive entry
    /// sizes, a consistent running token sum, chain hashes that re-derive,
    /// and no zero-count waiter entries.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut sum = 0u64;
        for (&conv, entry) in &self.entries {
            if entry.tokens == 0 {
                return Err(format!("prefix entry for {conv} retains zero tokens"));
            }
            if entry.chain != self.chain_hash(conv, entry.tokens) {
                return Err(format!("prefix entry for {conv} fails its chain hash"));
            }
            sum += entry.tokens;
        }
        if sum != self.retained_tokens {
            return Err(format!(
                "retained-token sum {sum} != running total {}",
                self.retained_tokens
            ));
        }
        if self.waiters.values().any(|&c| c == 0) {
            return Err("zero-count waiter entry".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> PrefixCache {
        PrefixCache::new(PrefixCacheConfig::default())
    }

    #[test]
    fn insert_match_remove_roundtrip() {
        let mut c = cache();
        let conv = ConversationId(3);
        assert_eq!(c.match_len(conv, 1_000), 0);
        c.insert(conv, RequestId(7), 500, SimTime::from_secs(1.0));
        assert_eq!(c.retained_tokens(), 500);
        assert_eq!(c.match_len(conv, 1_000), 500);
        // A prompt no longer than the entry cannot reuse it.
        assert_eq!(c.match_len(conv, 500), 0);
        assert_eq!(c.match_len(conv, 400), 0);
        let e = c.remove(conv).expect("entry");
        assert_eq!(e.owner, RequestId(7));
        assert_eq!(c.retained_tokens(), 0);
        assert!(c.is_empty());
        assert!(c.check_invariants().is_ok());
    }

    #[test]
    fn insert_replaces_and_returns_the_old_entry() {
        let mut c = cache();
        let conv = ConversationId(0);
        c.insert(conv, RequestId(1), 100, SimTime::from_secs(1.0));
        let old = c
            .insert(conv, RequestId(2), 250, SimTime::from_secs(2.0))
            .expect("replaced");
        assert_eq!(old.owner, RequestId(1));
        assert_eq!(c.retained_tokens(), 250);
        assert_eq!(c.len(), 1);
        assert!(c.check_invariants().is_ok());
    }

    #[test]
    fn chain_hash_distinguishes_conversations_and_lengths() {
        let c = cache();
        let a = c.chain_hash(ConversationId(1), 640);
        assert_ne!(a, c.chain_hash(ConversationId(2), 640));
        assert_ne!(a, c.chain_hash(ConversationId(1), 641));
        assert_eq!(a, c.chain_hash(ConversationId(1), 640));
    }

    #[test]
    fn waiters_pin_entries_against_eviction() {
        let mut c = cache();
        c.insert(ConversationId(0), RequestId(0), 10, SimTime::from_secs(2.0));
        c.insert(ConversationId(1), RequestId(1), 10, SimTime::from_secs(1.0));
        // LRU: conversation 1 was retained first.
        assert_eq!(c.eviction_victim(false, None), Some(ConversationId(1)));
        c.waiter_add(ConversationId(1));
        // Pinned: the unpinned entry is preferred even though it is newer.
        assert_eq!(c.eviction_victim(false, None), Some(ConversationId(0)));
        // With only pinned entries left, eviction needs allow_pinned.
        c.waiter_add(ConversationId(0));
        assert_eq!(c.eviction_victim(false, None), None);
        assert_eq!(c.eviction_victim(true, None), Some(ConversationId(1)));
        // The protected conversation is never chosen.
        assert_eq!(
            c.eviction_victim(true, Some(ConversationId(1))),
            Some(ConversationId(0))
        );
        c.waiter_drop(ConversationId(1));
        assert_eq!(c.waiters(ConversationId(1)), 0);
        assert_eq!(c.waiters(ConversationId(0)), 1);
        assert!(c.check_invariants().is_ok());
    }

    #[test]
    #[should_panic(expected = "without matching waiter_add")]
    fn unbalanced_waiter_drop_panics() {
        let mut c = cache();
        c.waiter_drop(ConversationId(5));
    }

    #[test]
    fn config_validation_rejects_bad_values() {
        assert!(PrefixCacheConfig {
            high_watermark: 0.0,
            block_tokens: 64
        }
        .validate()
        .is_err());
        assert!(PrefixCacheConfig {
            high_watermark: 1.5,
            block_tokens: 64
        }
        .validate()
        .is_err());
        assert!(PrefixCacheConfig {
            high_watermark: 0.7,
            block_tokens: 0
        }
        .validate()
        .is_err());
        assert!(PrefixCacheConfig::default().validate().is_ok());
    }
}
