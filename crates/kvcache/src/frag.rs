//! Fragmentation metrics.
//!
//! §2.4 and Figure 4 of the paper motivate the unified pool with a
//! fragmentation argument: under a locality constraint (the whole request
//! must fit on one instance), a cluster can have plenty of total free memory
//! yet be unable to admit a long request. These helpers quantify that gap
//! for reporting and for the admission logic of the locality-constrained
//! baselines.

use crate::unified::UnifiedKvPool;
use serde::{Deserialize, Serialize};

/// A snapshot of fragmentation-related statistics for a pool.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FragmentationReport {
    /// Total free slots across all instances.
    pub total_free: u64,
    /// Largest free region available on any single instance.
    pub largest_single_instance_free: u64,
    /// The largest request admissible under a single-instance locality
    /// constraint divided by the largest request admissible by the unified
    /// pool. 1.0 means no fragmentation penalty; values near 0 mean most of
    /// the free memory is unusable for a long request.
    pub locality_admissible_fraction: f64,
}

/// Computes the fragmentation report for the current pool state.
pub fn fragmentation_report(pool: &UnifiedKvPool) -> FragmentationReport {
    let total_free = pool.total_free();
    let largest = pool
        .free_slots()
        .into_iter()
        .map(|(_, f)| f)
        .max()
        .unwrap_or(0);
    FragmentationReport {
        total_free,
        largest_single_instance_free: largest,
        locality_admissible_fraction: if total_free == 0 {
            1.0
        } else {
            largest as f64 / total_free as f64
        },
    }
}

/// Returns true if a request needing `tokens` KV slots can be admitted under
/// a single-instance locality constraint (the grouped baselines' rule).
pub fn admissible_with_locality(pool: &UnifiedKvPool, tokens: u64) -> bool {
    pool.free_slots().into_iter().any(|(_, f)| f >= tokens)
}

/// Returns true if a request needing `tokens` KV slots can be admitted by
/// the unified pool (LoongServe's rule: only the total matters).
pub fn admissible_unified(pool: &UnifiedKvPool, tokens: u64) -> bool {
    pool.total_free() >= tokens
}

#[cfg(test)]
mod tests {
    use super::*;
    use loong_simcore::ids::{InstanceId, RequestId};

    /// Reproduces Figure 4: six free slots spread over three instances, yet
    /// no instance can host a six-token request.
    #[test]
    fn figure4_locality_blocks_but_unified_admits() {
        let mut pool = UnifiedKvPool::with_capacities(&[4, 3, 3]);
        pool.append(RequestId(0), InstanceId(0), 2).expect("room");
        pool.append(RequestId(1), InstanceId(1), 1).expect("room");
        pool.append(RequestId(2), InstanceId(2), 1).expect("room");
        // Free: 2, 2, 2 — six in total.
        assert_eq!(pool.total_free(), 6);
        assert!(!admissible_with_locality(&pool, 6));
        assert!(admissible_unified(&pool, 6));
        let report = fragmentation_report(&pool);
        assert_eq!(report.largest_single_instance_free, 2);
        assert!((report.locality_admissible_fraction - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_pool_has_no_fragmentation_penalty() {
        let pool = UnifiedKvPool::with_capacities(&[10]);
        let report = fragmentation_report(&pool);
        assert_eq!(report.total_free, 10);
        assert_eq!(report.largest_single_instance_free, 10);
        assert_eq!(report.locality_admissible_fraction, 1.0);
    }

    #[test]
    fn full_pool_reports_unity_fraction() {
        let mut pool = UnifiedKvPool::with_capacities(&[4]);
        pool.append(RequestId(0), InstanceId(0), 4).expect("room");
        let report = fragmentation_report(&pool);
        assert_eq!(report.total_free, 0);
        assert_eq!(report.locality_admissible_fraction, 1.0);
        assert!(admissible_with_locality(&pool, 0));
        assert!(!admissible_unified(&pool, 1));
    }
}
