//! Per-instance key-value cache pools.
//!
//! Each elastic instance manages its GPU memory as a pool of token-granular
//! KV slots (the paper implements this with PagedAttention at a block size
//! of one token, §6). A pool tracks how many slots each request occupies on
//! this instance; the cross-instance view lives in
//! [`crate::unified::UnifiedKvPool`].

use loong_simcore::ids::{InstanceId, RequestId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Errors returned by pool operations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum KvError {
    /// The instance does not have enough free slots for the allocation.
    InsufficientCapacity {
        /// Instance that rejected the allocation.
        instance: InstanceId,
        /// Slots requested.
        requested: u64,
        /// Slots actually free.
        free: u64,
    },
    /// The request has no slots on this instance.
    UnknownRequest {
        /// Instance that was queried.
        instance: InstanceId,
        /// The request that was not found.
        request: RequestId,
    },
    /// The host swap tier does not have enough free slots.
    HostInsufficientCapacity {
        /// Slots requested.
        requested: u64,
        /// Slots actually free on the host.
        free: u64,
    },
    /// The host swap tier is not enabled on this pool.
    HostTierDisabled,
    /// The request is currently parked on the host tier; device-side
    /// mutations (or a second swap-out) must wait for its swap-in.
    AlreadySwapped {
        /// The swapped-out request.
        request: RequestId,
    },
    /// The request holds no host slots, so it cannot be swapped in (or it
    /// holds no device slots, so it cannot be swapped out).
    NothingToSwap {
        /// The request that had nothing to move.
        request: RequestId,
    },
    /// No feasible device placement exists for a swap-in.
    NoSwapInPlacement {
        /// The request whose KV could not be placed.
        request: RequestId,
        /// Tokens that needed placing.
        requested: u64,
    },
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::InsufficientCapacity {
                instance,
                requested,
                free,
            } => write!(
                f,
                "{instance}: requested {requested} KV slots but only {free} free"
            ),
            KvError::UnknownRequest { instance, request } => {
                write!(f, "{instance}: request {request} holds no KV slots here")
            }
            KvError::HostInsufficientCapacity { requested, free } => write!(
                f,
                "host tier: requested {requested} KV slots but only {free} free"
            ),
            KvError::HostTierDisabled => write!(f, "host swap tier is not enabled"),
            KvError::AlreadySwapped { request } => {
                write!(f, "request {request} is swapped out to the host tier")
            }
            KvError::NothingToSwap { request } => {
                write!(f, "request {request} holds no KV slots to swap")
            }
            KvError::NoSwapInPlacement { request, requested } => write!(
                f,
                "no feasible placement for swapping {requested} KV slots of {request} back in"
            ),
        }
    }
}

impl std::error::Error for KvError {}

/// The token-granularity KV pool of one elastic instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceKvPool {
    /// The owning instance.
    pub instance: InstanceId,
    /// Total slot capacity (tokens).
    capacity: u64,
    /// Currently used slots.
    used: u64,
    /// Slots held per request.
    per_request: HashMap<RequestId, u64>,
}

impl InstanceKvPool {
    /// Creates an empty pool with the given capacity in token slots.
    pub fn new(instance: InstanceId, capacity: u64) -> Self {
        InstanceKvPool {
            instance,
            capacity,
            used: 0,
            per_request: HashMap::new(),
        }
    }

    /// Total capacity in token slots.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Used token slots.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Free token slots.
    pub fn free(&self) -> u64 {
        self.capacity - self.used
    }

    /// Number of requests holding slots here.
    pub fn resident_requests(&self) -> usize {
        self.per_request.len()
    }

    /// Slots held by `request` on this instance (zero if none).
    pub fn used_by(&self, request: RequestId) -> u64 {
        self.per_request.get(&request).copied().unwrap_or(0)
    }

    /// Returns true if `request` holds any slots here.
    pub fn hosts(&self, request: RequestId) -> bool {
        self.per_request.contains_key(&request)
    }

    /// Allocates `tokens` slots to `request`, growing its existing
    /// allocation if it already holds slots here.
    pub fn allocate(&mut self, request: RequestId, tokens: u64) -> Result<(), KvError> {
        if tokens == 0 {
            return Ok(());
        }
        if tokens > self.free() {
            return Err(KvError::InsufficientCapacity {
                instance: self.instance,
                requested: tokens,
                free: self.free(),
            });
        }
        *self.per_request.entry(request).or_insert(0) += tokens;
        self.used += tokens;
        Ok(())
    }

    /// Releases all slots held by `request`, returning how many were freed.
    pub fn release(&mut self, request: RequestId) -> u64 {
        let freed = self.per_request.remove(&request).unwrap_or(0);
        self.used -= freed;
        freed
    }

    /// Releases `tokens` slots of `request` (used when migrating part of a
    /// request away from this instance).
    pub fn release_partial(&mut self, request: RequestId, tokens: u64) -> Result<(), KvError> {
        let Some(held) = self.per_request.get_mut(&request) else {
            return Err(KvError::UnknownRequest {
                instance: self.instance,
                request,
            });
        };
        assert!(
            *held >= tokens,
            "cannot release {tokens} slots: request {request} holds only {held} on {}",
            self.instance
        );
        *held -= tokens;
        self.used -= tokens;
        if *held == 0 {
            self.per_request.remove(&request);
        }
        Ok(())
    }

    /// All requests with slots on this instance, with their slot counts.
    pub fn residents(&self) -> impl Iterator<Item = (RequestId, u64)> + '_ {
        self.per_request.iter().map(|(&r, &t)| (r, t))
    }

    /// Transfers every slot held by `from` to `to` without touching the
    /// free-slot accounting. This is the mechanism behind atomic prefix
    /// reuse: a completed request's retained KV becomes the follow-up
    /// request's KV in place, with no copy and no transient free/alloc
    /// window another allocation could race into.
    ///
    /// # Panics
    ///
    /// Panics if `to` already holds slots here (a request adopts a prefix
    /// before its first prefill commits anything) or if `from` holds none.
    pub fn rename(&mut self, from: RequestId, to: RequestId) -> u64 {
        assert!(
            !self.per_request.contains_key(&to),
            "{}: rename target {to} already holds KV slots",
            self.instance
        );
        let tokens = self
            .per_request
            .remove(&from)
            .unwrap_or_else(|| panic!("{}: rename source {from} holds no KV slots", self.instance));
        self.per_request.insert(to, tokens);
        tokens
    }

    /// Checks the internal bookkeeping invariant (used slots equal the sum
    /// of per-request holdings and never exceed capacity).
    pub fn check_invariants(&self) -> Result<(), String> {
        let sum: u64 = self.per_request.values().sum();
        if sum != self.used {
            return Err(format!(
                "{}: per-request sum {sum} != used {}",
                self.instance, self.used
            ));
        }
        if self.used > self.capacity {
            return Err(format!(
                "{}: used {} exceeds capacity {}",
                self.instance, self.used, self.capacity
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_release_roundtrip() {
        let mut pool = InstanceKvPool::new(InstanceId(0), 100);
        pool.allocate(RequestId(1), 30).expect("fits");
        pool.allocate(RequestId(2), 50).expect("fits");
        assert_eq!(pool.free(), 20);
        assert_eq!(pool.used_by(RequestId(1)), 30);
        assert_eq!(pool.resident_requests(), 2);
        assert_eq!(pool.release(RequestId(1)), 30);
        assert_eq!(pool.free(), 50);
        assert!(pool.check_invariants().is_ok());
    }

    #[test]
    fn over_allocation_is_rejected() {
        let mut pool = InstanceKvPool::new(InstanceId(0), 10);
        let err = pool.allocate(RequestId(1), 11).unwrap_err();
        match err {
            KvError::InsufficientCapacity {
                requested, free, ..
            } => {
                assert_eq!(requested, 11);
                assert_eq!(free, 10);
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert_eq!(pool.used(), 0);
    }

    #[test]
    fn incremental_growth_accumulates() {
        let mut pool = InstanceKvPool::new(InstanceId(0), 10);
        for _ in 0..5 {
            pool.allocate(RequestId(7), 1).expect("fits");
        }
        assert_eq!(pool.used_by(RequestId(7)), 5);
        assert!(pool.hosts(RequestId(7)));
    }

    #[test]
    fn partial_release_shrinks_holding() {
        let mut pool = InstanceKvPool::new(InstanceId(0), 100);
        pool.allocate(RequestId(1), 40).expect("fits");
        pool.release_partial(RequestId(1), 10).expect("held");
        assert_eq!(pool.used_by(RequestId(1)), 30);
        pool.release_partial(RequestId(1), 30).expect("held");
        assert!(!pool.hosts(RequestId(1)));
        assert!(pool.check_invariants().is_ok());
    }

    #[test]
    fn partial_release_of_unknown_request_errors() {
        let mut pool = InstanceKvPool::new(InstanceId(0), 100);
        assert!(matches!(
            pool.release_partial(RequestId(9), 1),
            Err(KvError::UnknownRequest { .. })
        ));
    }

    #[test]
    fn zero_allocation_is_a_noop() {
        let mut pool = InstanceKvPool::new(InstanceId(0), 10);
        pool.allocate(RequestId(1), 0).expect("trivially fits");
        assert_eq!(pool.used(), 0);
        assert!(!pool.hosts(RequestId(1)));
    }

    #[test]
    fn error_display_is_informative() {
        let e = KvError::InsufficientCapacity {
            instance: InstanceId(3),
            requested: 10,
            free: 2,
        };
        let msg = format!("{e}");
        assert!(msg.contains("inst3") && msg.contains("10") && msg.contains('2'));
    }
}
