//! Token-level KV placement plans.
//!
//! A placement plan says, for one request, how many of its KV tokens land on
//! which elastic instance. Plans are produced by schedulers (LoongServe
//! places tokens anywhere in the unified pool; baselines are restricted to a
//! single instance) and consumed by [`crate::unified::UnifiedKvPool`] when
//! the tokens are committed.

use loong_simcore::ids::{InstanceId, RequestId};
use serde::{Deserialize, Serialize};

/// How tokens should be spread across candidate instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementStrategy {
    /// Fill the instance with the most free slots first, then the next, …
    /// Minimises the number of instances touched.
    PackMostFree,
    /// Spread tokens proportionally to each instance's free slots, keeping
    /// utilisation balanced (LoongServe's default for prefill retention).
    Balanced,
    /// Split tokens as evenly as possible across all candidate instances,
    /// regardless of their current load (classic static sequence
    /// parallelism).
    EvenSplit,
}

/// The placement of one request's tokens across instances.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementPlan {
    /// The request being placed.
    pub request: RequestId,
    /// `(instance, tokens)` spans; instances are unique and tokens are
    /// positive.
    pub spans: Vec<(InstanceId, u64)>,
}

impl PlacementPlan {
    /// Total tokens covered by the plan.
    pub fn total_tokens(&self) -> u64 {
        self.spans.iter().map(|(_, t)| t).sum()
    }

    /// The instances the plan touches.
    pub fn instances(&self) -> Vec<InstanceId> {
        self.spans.iter().map(|&(i, _)| i).collect()
    }

    /// Tokens placed on a given instance (zero if none).
    pub fn tokens_on(&self, instance: InstanceId) -> u64 {
        self.spans
            .iter()
            .find(|&&(i, _)| i == instance)
            .map(|&(_, t)| t)
            .unwrap_or(0)
    }

    /// Validates structural invariants: unique instances, positive spans.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = Vec::new();
        for &(inst, tokens) in &self.spans {
            if tokens == 0 {
                return Err(format!("{}: zero-token span on {inst}", self.request));
            }
            if seen.contains(&inst) {
                return Err(format!("{}: duplicate instance {inst}", self.request));
            }
            seen.push(inst);
        }
        Ok(())
    }
}

/// Computes a placement of `tokens` tokens over `candidates`, where each
/// candidate is `(instance, free_slots)`, using the given strategy.
///
/// Returns `None` if the candidates' combined free slots cannot hold the
/// request — the caller then either rejects the request or widens the
/// candidate set (exactly the decision LoongServe's dispatcher makes).
pub fn plan_placement(
    request: RequestId,
    tokens: u64,
    candidates: &[(InstanceId, u64)],
    strategy: PlacementStrategy,
) -> Option<PlacementPlan> {
    if tokens == 0 {
        return Some(PlacementPlan {
            request,
            spans: Vec::new(),
        });
    }
    let total_free: u64 = candidates.iter().map(|(_, f)| f).sum();
    if total_free < tokens || candidates.is_empty() {
        return None;
    }
    let spans = match strategy {
        PlacementStrategy::PackMostFree => {
            let mut sorted: Vec<(InstanceId, u64)> = candidates.to_vec();
            sorted.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            let mut remaining = tokens;
            let mut spans = Vec::new();
            for (inst, free) in sorted {
                if remaining == 0 {
                    break;
                }
                let take = remaining.min(free);
                if take > 0 {
                    spans.push((inst, take));
                    remaining -= take;
                }
            }
            spans
        }
        PlacementStrategy::Balanced => {
            // Proportional to free slots, with a largest-remainder style
            // fix-up pass so the total matches exactly and no span exceeds
            // the instance's free slots.
            let mut spans: Vec<(InstanceId, u64)> = Vec::new();
            let mut assigned = 0u64;
            for &(inst, free) in candidates {
                let share = ((free as f64 / total_free as f64) * tokens as f64).floor() as u64;
                let share = share.min(free);
                if share > 0 {
                    spans.push((inst, share));
                }
                assigned += share;
            }
            let mut remaining = tokens - assigned;
            // Distribute the remainder to instances with spare room, most
            // free first.
            let mut order: Vec<(InstanceId, u64)> = candidates.to_vec();
            order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            for (inst, free) in order {
                if remaining == 0 {
                    break;
                }
                let already = spans
                    .iter()
                    .find(|&&(i, _)| i == inst)
                    .map(|&(_, t)| t)
                    .unwrap_or(0);
                let room = free - already;
                let extra = remaining.min(room);
                if extra == 0 {
                    continue;
                }
                if let Some(span) = spans.iter_mut().find(|(i, _)| *i == inst) {
                    span.1 += extra;
                } else {
                    spans.push((inst, extra));
                }
                remaining -= extra;
            }
            if remaining > 0 {
                return None;
            }
            spans
        }
        PlacementStrategy::EvenSplit => {
            let n = candidates.len() as u64;
            let base = tokens / n;
            let mut remainder = tokens % n;
            let mut spans = Vec::new();
            for &(inst, free) in candidates {
                let mut want = base;
                if remainder > 0 {
                    want += 1;
                    remainder -= 1;
                }
                if want > free {
                    // Even split is infeasible on this instance; the static
                    // strategies the paper criticises fail exactly here.
                    return None;
                }
                if want > 0 {
                    spans.push((inst, want));
                }
            }
            spans
        }
    };
    let plan = PlacementPlan { request, spans };
    debug_assert_eq!(plan.total_tokens(), tokens);
    debug_assert!(plan.validate().is_ok());
    Some(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidates() -> Vec<(InstanceId, u64)> {
        vec![
            (InstanceId(0), 100_000),
            (InstanceId(1), 200_000),
            (InstanceId(2), 400_000),
        ]
    }

    #[test]
    fn pack_most_free_uses_fewest_instances() {
        let plan = plan_placement(
            RequestId(0),
            350_000,
            &candidates(),
            PlacementStrategy::PackMostFree,
        )
        .expect("fits");
        assert_eq!(plan.total_tokens(), 350_000);
        assert_eq!(plan.spans[0], (InstanceId(2), 350_000));
        assert_eq!(plan.spans.len(), 1);
    }

    #[test]
    fn balanced_spreads_proportionally() {
        let plan = plan_placement(
            RequestId(0),
            350_000,
            &candidates(),
            PlacementStrategy::Balanced,
        )
        .expect("fits");
        assert_eq!(plan.total_tokens(), 350_000);
        // Instance 2 has 4x the free slots of instance 0, so it should take
        // roughly 4x the tokens.
        let t0 = plan.tokens_on(InstanceId(0));
        let t2 = plan.tokens_on(InstanceId(2));
        assert!(t2 > 3 * t0, "t0={t0} t2={t2}");
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn paper_fragmentation_example() {
        // §4.1: a 600K-token request over instances with 100K/200K/400K free
        // slots. Even splitting (200K each) OOMs the first instance, but
        // token-level placement fits.
        let even = plan_placement(
            RequestId(0),
            600_000,
            &candidates(),
            PlacementStrategy::EvenSplit,
        );
        assert!(
            even.is_none(),
            "even split should fail as in the paper's example"
        );
        let balanced = plan_placement(
            RequestId(0),
            600_000,
            &candidates(),
            PlacementStrategy::Balanced,
        );
        assert!(balanced.is_some(), "token-level placement should succeed");
        let packed = plan_placement(
            RequestId(0),
            600_000,
            &candidates(),
            PlacementStrategy::PackMostFree,
        );
        assert_eq!(packed.expect("fits").total_tokens(), 600_000);
    }

    #[test]
    fn infeasible_when_total_free_is_too_small() {
        for strategy in [
            PlacementStrategy::PackMostFree,
            PlacementStrategy::Balanced,
            PlacementStrategy::EvenSplit,
        ] {
            assert!(plan_placement(RequestId(0), 800_000, &candidates(), strategy).is_none());
        }
    }

    #[test]
    fn zero_tokens_yields_empty_plan() {
        let plan = plan_placement(RequestId(0), 0, &candidates(), PlacementStrategy::Balanced)
            .expect("empty");
        assert!(plan.spans.is_empty());
        assert_eq!(plan.total_tokens(), 0);
    }

    #[test]
    fn even_split_divides_evenly_when_it_fits() {
        let cands = vec![
            (InstanceId(0), 1000),
            (InstanceId(1), 1000),
            (InstanceId(2), 1000),
        ];
        let plan =
            plan_placement(RequestId(0), 900, &cands, PlacementStrategy::EvenSplit).expect("fits");
        for inst in 0..3 {
            assert_eq!(plan.tokens_on(InstanceId(inst)), 300);
        }
    }

    #[test]
    fn validation_rejects_duplicates_and_zero_spans() {
        let bad = PlacementPlan {
            request: RequestId(0),
            spans: vec![(InstanceId(0), 1), (InstanceId(0), 2)],
        };
        assert!(bad.validate().is_err());
        let zero = PlacementPlan {
            request: RequestId(0),
            spans: vec![(InstanceId(0), 0)],
        };
        assert!(zero.validate().is_err());
    }
}
