//! The host-DRAM swap tier.
//!
//! When device KV memory comes under pressure, a scheduler can evict a
//! request's KV cache to host DRAM over PCIe instead of discarding and
//! recomputing it (the trade the vLLM-style baselines make, §7). The
//! [`HostKvPool`] is that tier: a token-granular pool of host slots holding
//! *whole requests* — swap is all-or-nothing per request, so a request is
//! either fully device-resident or fully parked on the host, never split
//! across tiers. [`crate::unified::UnifiedKvPool`] owns an optional
//! `HostKvPool` and exposes the `swap_out`/`swap_in` operations that move
//! requests between the tiers atomically.
//!
//! The pool tracks capacity only; transfer *cost* (PCIe alpha–beta time) is
//! charged by the engine, like every other link in the simulator.

use crate::pool::KvError;
use loong_simcore::ids::RequestId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The token-granularity host-DRAM pool of one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostKvPool {
    /// Total slot capacity (tokens).
    capacity: u64,
    /// Currently used slots.
    used: u64,
    /// Slots held per swapped-out request. A `BTreeMap` keeps
    /// [`HostKvPool::swapped_requests`] deterministic.
    per_request: BTreeMap<RequestId, u64>,
}

impl HostKvPool {
    /// Creates an empty host pool with the given capacity in token slots.
    pub fn new(capacity: u64) -> Self {
        HostKvPool {
            capacity,
            used: 0,
            per_request: BTreeMap::new(),
        }
    }

    /// Total capacity in token slots.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Used token slots.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Free token slots.
    pub fn free(&self) -> u64 {
        self.capacity - self.used
    }

    /// Slots held by `request` on the host (zero if not swapped out).
    pub fn swapped_tokens_of(&self, request: RequestId) -> u64 {
        self.per_request.get(&request).copied().unwrap_or(0)
    }

    /// Returns true if `request` is parked on the host.
    pub fn hosts(&self, request: RequestId) -> bool {
        self.per_request.contains_key(&request)
    }

    /// All swapped-out requests, sorted by id.
    pub fn swapped_requests(&self) -> Vec<RequestId> {
        self.per_request.keys().copied().collect()
    }

    /// Number of swapped-out requests.
    pub fn swapped_count(&self) -> usize {
        self.per_request.len()
    }

    /// Accepts `tokens` slots of `request` into the host pool.
    ///
    /// Fails if the host is full or the request is already parked here
    /// (whole-request granularity: a second swap-out before a swap-in is a
    /// caller bug surfaced as an error, not silent accumulation).
    pub fn accept(&mut self, request: RequestId, tokens: u64) -> Result<(), KvError> {
        if self.per_request.contains_key(&request) {
            return Err(KvError::AlreadySwapped { request });
        }
        if tokens > self.free() {
            return Err(KvError::HostInsufficientCapacity {
                requested: tokens,
                free: self.free(),
            });
        }
        if tokens > 0 {
            self.per_request.insert(request, tokens);
            self.used += tokens;
        }
        Ok(())
    }

    /// Releases every host slot held by `request`, returning the number
    /// freed (zero if the request was not swapped out).
    pub fn release(&mut self, request: RequestId) -> u64 {
        let freed = self.per_request.remove(&request).unwrap_or(0);
        self.used -= freed;
        freed
    }

    /// Checks the internal bookkeeping invariant (used slots equal the sum
    /// of per-request holdings, never exceed capacity, no zero entries).
    pub fn check_invariants(&self) -> Result<(), String> {
        let sum: u64 = self.per_request.values().sum();
        if sum != self.used {
            return Err(format!(
                "host pool: per-request sum {sum} != used {}",
                self.used
            ));
        }
        if self.used > self.capacity {
            return Err(format!(
                "host pool: used {} exceeds capacity {}",
                self.used, self.capacity
            ));
        }
        if self.per_request.values().any(|&t| t == 0) {
            return Err("host pool holds a zero-token entry".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_and_release_roundtrip() {
        let mut host = HostKvPool::new(1_000);
        host.accept(RequestId(1), 300).expect("fits");
        host.accept(RequestId(2), 700).expect("fits");
        assert_eq!(host.free(), 0);
        assert_eq!(host.swapped_tokens_of(RequestId(1)), 300);
        assert_eq!(host.swapped_requests(), vec![RequestId(1), RequestId(2)]);
        assert!(host.check_invariants().is_ok());
        assert_eq!(host.release(RequestId(1)), 300);
        assert_eq!(host.free(), 300);
        assert!(!host.hosts(RequestId(1)));
        assert!(host.check_invariants().is_ok());
    }

    #[test]
    fn over_capacity_accept_is_rejected_and_harmless() {
        let mut host = HostKvPool::new(100);
        assert!(matches!(
            host.accept(RequestId(0), 101),
            Err(KvError::HostInsufficientCapacity {
                requested: 101,
                free: 100
            })
        ));
        assert_eq!(host.used(), 0);
        assert!(host.check_invariants().is_ok());
    }

    #[test]
    fn double_swap_out_is_an_error() {
        let mut host = HostKvPool::new(100);
        host.accept(RequestId(3), 10).expect("fits");
        assert!(matches!(
            host.accept(RequestId(3), 10),
            Err(KvError::AlreadySwapped { .. })
        ));
        assert_eq!(host.swapped_tokens_of(RequestId(3)), 10);
    }

    #[test]
    fn releasing_unknown_request_frees_nothing() {
        let mut host = HostKvPool::new(100);
        assert_eq!(host.release(RequestId(9)), 0);
        assert_eq!(host.used(), 0);
    }

    #[test]
    fn zero_token_accept_is_a_noop() {
        let mut host = HostKvPool::new(100);
        host.accept(RequestId(1), 0).expect("trivially fits");
        assert!(!host.hosts(RequestId(1)));
        assert_eq!(host.swapped_count(), 0);
    }
}
