//! The unified distributed KV cache pool.
//!
//! LoongServe treats the KV memory of all elastic instances as one pool
//! (paper §3, §4): a request's tokens can live on any subset of instances at
//! single-token granularity, which removes the locality constraint that
//! causes fragmentation in grouped designs (Figure 4). This module tracks
//! slot usage across instances, commits placement plans, grows requests
//! during decoding, migrates spans between instances, and evicts requests.

use crate::host::HostKvPool;
use crate::placement::{plan_placement, PlacementPlan, PlacementStrategy};
use crate::pool::{InstanceKvPool, KvError};
use crate::prefix::{PrefixCache, PrefixCacheConfig, PrefixDemand};
use loong_simcore::ids::{ConversationId, InstanceId, RequestId};
use loong_simcore::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A KV migration of part of one request between two instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KvMove {
    /// Request whose tokens move.
    pub request: RequestId,
    /// Source instance.
    pub from: InstanceId,
    /// Destination instance.
    pub to: InstanceId,
    /// Number of tokens moved.
    pub tokens: u64,
}

/// The cross-instance pool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnifiedKvPool {
    pools: Vec<InstanceKvPool>,
    /// Per-request residency index: which instances hold how many of each
    /// request's tokens, kept sorted by instance id. Maintained on every
    /// mutation so `locations_of`/`tokens_of` cost O(#locations) instead of
    /// a scan over all instances, and `resident_requests` costs O(n)
    /// instead of O(n²). The `BTreeMap` keeps iteration deterministic.
    residency: BTreeMap<RequestId, Vec<(InstanceId, u64)>>,
    /// The optional host-DRAM swap tier. `None` (the default) keeps every
    /// device-side operation on its pre-existing path — the zero-cost-when-
    /// disabled invariant the golden digests pin.
    host: Option<HostKvPool>,
    /// The optional prefix-cache tier. `None` (the default) keeps finished
    /// requests on the release path and adds no lookups anywhere — the same
    /// zero-cost-when-disabled contract as the host tier.
    prefix: Option<PrefixCache>,
}

impl UnifiedKvPool {
    /// Creates a pool over `instances` instances, each with `capacity`
    /// token slots.
    pub fn new(instances: usize, capacity_per_instance: u64) -> Self {
        UnifiedKvPool {
            pools: (0..instances)
                .map(|i| InstanceKvPool::new(InstanceId::from(i), capacity_per_instance))
                .collect(),
            residency: BTreeMap::new(),
            host: None,
            prefix: None,
        }
    }

    /// Creates a pool with per-instance capacities (useful for heterogeneous
    /// scenarios and tests).
    pub fn with_capacities(capacities: &[u64]) -> Self {
        UnifiedKvPool {
            pools: capacities
                .iter()
                .enumerate()
                .map(|(i, &c)| InstanceKvPool::new(InstanceId::from(i), c))
                .collect(),
            residency: BTreeMap::new(),
            host: None,
            prefix: None,
        }
    }

    /// Number of instances in the pool.
    pub fn num_instances(&self) -> usize {
        self.pools.len()
    }

    /// The per-instance pool for `instance`.
    ///
    /// # Panics
    ///
    /// Panics if the instance is out of range.
    pub fn instance(&self, instance: InstanceId) -> &InstanceKvPool {
        &self.pools[instance.index()]
    }

    /// Free slots on each instance, as `(instance, free)` pairs.
    pub fn free_slots(&self) -> Vec<(InstanceId, u64)> {
        self.pools.iter().map(|p| (p.instance, p.free())).collect()
    }

    /// Free slots on a subset of instances.
    pub fn free_slots_on(&self, instances: &[InstanceId]) -> Vec<(InstanceId, u64)> {
        instances
            .iter()
            .map(|&i| (i, self.pools[i.index()].free()))
            .collect()
    }

    /// Total free slots across all instances.
    pub fn total_free(&self) -> u64 {
        self.pools.iter().map(|p| p.free()).sum()
    }

    /// Total used slots across all instances.
    pub fn total_used(&self) -> u64 {
        self.pools.iter().map(|p| p.used()).sum()
    }

    /// Total capacity across all instances.
    pub fn total_capacity(&self) -> u64 {
        self.pools.iter().map(|p| p.capacity()).sum()
    }

    /// Tokens `request` holds on each instance, sorted by instance id.
    /// Served from the residency index in O(#locations).
    pub fn locations_of(&self, request: RequestId) -> Vec<(InstanceId, u64)> {
        self.residency.get(&request).cloned().unwrap_or_default()
    }

    /// Like [`Self::locations_of`] but without cloning: a borrowed view of
    /// the request's residency, sorted by instance id.
    pub fn locations_ref(&self, request: RequestId) -> &[(InstanceId, u64)] {
        self.residency
            .get(&request)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Total tokens `request` holds across the pool, in O(#locations).
    pub fn tokens_of(&self, request: RequestId) -> u64 {
        self.locations_ref(request).iter().map(|&(_, t)| t).sum()
    }

    /// Records `tokens` more slots for `request` on `instance` in the
    /// residency index, keeping each per-request vector sorted by instance.
    fn residency_add(&mut self, request: RequestId, instance: InstanceId, tokens: u64) {
        if tokens == 0 {
            return;
        }
        let locations = self.residency.entry(request).or_default();
        match locations.binary_search_by_key(&instance, |&(i, _)| i) {
            Ok(pos) => locations[pos].1 += tokens,
            Err(pos) => locations.insert(pos, (instance, tokens)),
        }
    }

    /// Removes `tokens` slots of `request` on `instance` from the residency
    /// index, dropping empty entries.
    fn residency_sub(&mut self, request: RequestId, instance: InstanceId, tokens: u64) {
        if tokens == 0 {
            return;
        }
        let locations = self
            .residency
            .get_mut(&request)
            .expect("residency index tracks every resident request");
        let pos = locations
            .binary_search_by_key(&instance, |&(i, _)| i)
            .expect("residency index tracks every location");
        assert!(
            locations[pos].1 >= tokens,
            "residency index underflow for {request} on {instance}"
        );
        locations[pos].1 -= tokens;
        if locations[pos].1 == 0 {
            locations.remove(pos);
        }
        if locations.is_empty() {
            self.residency.remove(&request);
        }
    }

    /// Plans a placement of `tokens` for `request` restricted to
    /// `candidates`, without committing it.
    pub fn plan(
        &self,
        request: RequestId,
        tokens: u64,
        candidates: &[InstanceId],
        strategy: PlacementStrategy,
    ) -> Option<PlacementPlan> {
        plan_placement(request, tokens, &self.free_slots_on(candidates), strategy)
    }

    /// Commits a placement plan, allocating its spans.
    pub fn commit(&mut self, plan: &PlacementPlan) -> Result<(), KvError> {
        plan.validate()
            .expect("placement plans are validated at construction");
        self.ensure_not_swapped(plan.request)?;
        // Two-phase: check everything fits before mutating so a failed
        // commit leaves the pool untouched.
        for &(inst, tokens) in &plan.spans {
            let pool = &self.pools[inst.index()];
            if tokens > pool.free() {
                return Err(KvError::InsufficientCapacity {
                    instance: inst,
                    requested: tokens,
                    free: pool.free(),
                });
            }
        }
        for &(inst, tokens) in &plan.spans {
            self.pools[inst.index()]
                .allocate(plan.request, tokens)
                .expect("checked above");
            self.residency_add(plan.request, inst, tokens);
        }
        Ok(())
    }

    /// Appends `tokens` newly generated KV slots for `request` on a specific
    /// instance (the master that generated them during decoding).
    pub fn append(
        &mut self,
        request: RequestId,
        instance: InstanceId,
        tokens: u64,
    ) -> Result<(), KvError> {
        self.ensure_not_swapped(request)?;
        self.pools[instance.index()].allocate(request, tokens)?;
        self.residency_add(request, instance, tokens);
        Ok(())
    }

    /// Releases every slot held by `request`, returning the total freed.
    /// Only the instances the residency index names are touched.
    pub fn release(&mut self, request: RequestId) -> u64 {
        let Some(locations) = self.residency.remove(&request) else {
            return 0;
        };
        locations
            .iter()
            .map(|&(inst, _)| self.pools[inst.index()].release(request))
            .sum()
    }

    /// Applies a migration: moves `tokens` of `request` from one instance to
    /// another. Returns the move record for communication accounting.
    pub fn migrate(
        &mut self,
        request: RequestId,
        from: InstanceId,
        to: InstanceId,
        tokens: u64,
    ) -> Result<KvMove, KvError> {
        if tokens == 0 {
            return Ok(KvMove {
                request,
                from,
                to,
                tokens: 0,
            });
        }
        let held = self.pools[from.index()].used_by(request);
        if held < tokens {
            return Err(KvError::UnknownRequest {
                instance: from,
                request,
            });
        }
        // Destination must have room before we release the source.
        if self.pools[to.index()].free() < tokens {
            return Err(KvError::InsufficientCapacity {
                instance: to,
                requested: tokens,
                free: self.pools[to.index()].free(),
            });
        }
        self.pools[from.index()].release_partial(request, tokens)?;
        self.pools[to.index()]
            .allocate(request, tokens)
            .expect("capacity checked above");
        self.residency_sub(request, from, tokens);
        self.residency_add(request, to, tokens);
        Ok(KvMove {
            request,
            from,
            to,
            tokens,
        })
    }

    /// Moves everything `request` holds on `from` to other instances with
    /// room, preferring the instances with the most free slots. Used when
    /// the global manager drains an instance so the prefill phase can claim
    /// it (paper §5.2). Returns the moves performed, or `None` if the rest
    /// of the pool cannot absorb the tokens (in which case nothing changes).
    pub fn drain_instance(&mut self, request: RequestId, from: InstanceId) -> Option<Vec<KvMove>> {
        let to_move = self.pools[from.index()].used_by(request);
        if to_move == 0 {
            return Some(Vec::new());
        }
        let mut targets: Vec<(InstanceId, u64)> = self
            .pools
            .iter()
            .filter(|p| p.instance != from)
            .map(|p| (p.instance, p.free()))
            .collect();
        targets.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let available: u64 = targets.iter().map(|(_, f)| f).sum();
        if available < to_move {
            return None;
        }
        let mut moves = Vec::new();
        let mut remaining = to_move;
        for (to, free) in targets {
            if remaining == 0 {
                break;
            }
            let take = remaining.min(free);
            if take == 0 {
                continue;
            }
            let mv = self
                .migrate(request, from, to, take)
                .expect("capacity verified above");
            moves.push(mv);
            remaining -= take;
        }
        Some(moves)
    }

    /// All requests resident anywhere in the pool, sorted by id. Served
    /// from the residency index in O(n) — no per-id dedup scan.
    pub fn resident_requests(&self) -> Vec<RequestId> {
        self.residency.keys().copied().collect()
    }

    /// Checks bookkeeping invariants on every instance pool, and that the
    /// residency index agrees exactly with the per-instance pools.
    pub fn check_invariants(&self) -> Result<(), String> {
        for p in &self.pools {
            p.check_invariants()?;
        }
        // Every indexed location must match the owning pool...
        for (&request, locations) in &self.residency {
            if locations.is_empty() {
                return Err(format!("residency index holds empty entry for {request}"));
            }
            let mut prev: Option<InstanceId> = None;
            for &(inst, tokens) in locations {
                if prev.is_some_and(|p| p >= inst) {
                    return Err(format!("residency of {request} not sorted by instance"));
                }
                prev = Some(inst);
                let actual = self.pools[inst.index()].used_by(request);
                if tokens == 0 || actual != tokens {
                    return Err(format!(
                        "residency index says {request} holds {tokens} on {inst}, pool says {actual}"
                    ));
                }
            }
        }
        // ...and every pool holding must be indexed (no stale omissions).
        for p in &self.pools {
            for (request, tokens) in p.residents() {
                let indexed = self
                    .residency
                    .get(&request)
                    .and_then(|l| {
                        l.binary_search_by_key(&p.instance, |&(i, _)| i)
                            .ok()
                            .map(|pos| l[pos].1)
                    })
                    .unwrap_or(0);
                if indexed != tokens {
                    return Err(format!(
                        "{}: {request} holds {tokens} slots but residency index says {indexed}",
                        p.instance
                    ));
                }
            }
        }
        // The host tier, when enabled, must be internally consistent and
        // disjoint from device residency (swap is whole-request).
        if let Some(host) = &self.host {
            host.check_invariants()?;
            for request in host.swapped_requests() {
                if self.residency.contains_key(&request) {
                    return Err(format!(
                        "{request} is both device-resident and swapped to the host tier"
                    ));
                }
            }
        }
        // The prefix tier, when enabled, must name device-resident owners
        // whose holdings match the index exactly, each owner at most once,
        // and never an owner parked on the host tier (retention and swap
        // are disjoint by construction).
        if let Some(cache) = &self.prefix {
            cache.check_invariants()?;
            let mut owners: Vec<RequestId> = Vec::new();
            for (conv, entry) in cache.entries() {
                let held = self.tokens_of(entry.owner);
                if held != entry.tokens {
                    return Err(format!(
                        "prefix entry for {conv} says {} holds {} tokens, pool says {held}",
                        entry.owner, entry.tokens
                    ));
                }
                if self.host.as_ref().is_some_and(|h| h.hosts(entry.owner)) {
                    return Err(format!(
                        "prefix owner {} of {conv} is parked on the host tier",
                        entry.owner
                    ));
                }
                if owners.contains(&entry.owner) {
                    return Err(format!("prefix owner {} retained twice", entry.owner));
                }
                owners.push(entry.owner);
            }
        }
        Ok(())
    }

    /// Extends the pool with additional empty instances (multi-node scale
    /// out).
    pub fn add_instances(&mut self, count: usize, capacity_per_instance: u64) {
        let start = self.pools.len();
        for i in 0..count {
            self.pools.push(InstanceKvPool::new(
                InstanceId::from(start + i),
                capacity_per_instance,
            ));
        }
    }

    /// Per-instance utilisation in `[0, 1]`, sorted by instance id.
    ///
    /// Returns a sorted `Vec` rather than a `HashMap` so callers that
    /// iterate it (reports, schedulers) see a deterministic order.
    pub fn utilization(&self) -> Vec<(InstanceId, f64)> {
        self.pools
            .iter()
            .map(|p| {
                let u = if p.capacity() == 0 {
                    1.0
                } else {
                    p.used() as f64 / p.capacity() as f64
                };
                (p.instance, u)
            })
            .collect()
    }

    // ---- Host-DRAM swap tier ------------------------------------------------

    /// Enables the host swap tier with `capacity` token slots. The tier
    /// starts empty; enabling it changes no device-side state.
    ///
    /// # Panics
    ///
    /// Panics if the tier is already enabled.
    pub fn enable_host_tier(&mut self, capacity: u64) {
        assert!(self.host.is_none(), "host tier enabled twice");
        self.host = Some(HostKvPool::new(capacity));
    }

    /// The host swap tier, if enabled.
    pub fn host(&self) -> Option<&HostKvPool> {
        self.host.as_ref()
    }

    /// Returns true if the host swap tier is enabled.
    pub fn host_enabled(&self) -> bool {
        self.host.is_some()
    }

    /// Tokens `request` has parked on the host tier (zero when the tier is
    /// disabled or the request is device-resident).
    pub fn swapped_tokens_of(&self, request: RequestId) -> u64 {
        self.host
            .as_ref()
            .map(|h| h.swapped_tokens_of(request))
            .unwrap_or(0)
    }

    /// Total tokens parked on the host tier.
    pub fn total_swapped(&self) -> u64 {
        self.host.as_ref().map(|h| h.used()).unwrap_or(0)
    }

    /// Device pool utilisation in `[0, 1]` across all instances — the
    /// pressure signal watermark policies compare against.
    pub fn device_utilization(&self) -> f64 {
        let cap = self.total_capacity();
        if cap == 0 {
            return 1.0;
        }
        self.total_used() as f64 / cap as f64
    }

    /// Errors if `request` is currently parked on the host tier. Device-side
    /// mutations call this so a swapped request cannot grow a second,
    /// split-brain device residency; a disabled tier costs one `Option`
    /// check.
    fn ensure_not_swapped(&self, request: RequestId) -> Result<(), KvError> {
        match &self.host {
            Some(h) if h.hosts(request) => Err(KvError::AlreadySwapped { request }),
            _ => Ok(()),
        }
    }

    /// Evicts every device-resident token of `request` to the host tier,
    /// returning the number of tokens moved. Whole-request granularity: on
    /// success the request holds no device slots and appears only in the
    /// host pool; on error nothing changes.
    pub fn swap_out(&mut self, request: RequestId) -> Result<u64, KvError> {
        let Some(host) = &self.host else {
            return Err(KvError::HostTierDisabled);
        };
        let tokens = self.tokens_of(request);
        if tokens == 0 {
            return Err(KvError::NothingToSwap { request });
        }
        if host.hosts(request) {
            return Err(KvError::AlreadySwapped { request });
        }
        if tokens > host.free() {
            return Err(KvError::HostInsufficientCapacity {
                requested: tokens,
                free: host.free(),
            });
        }
        // All checks passed: release the device slots, park on the host.
        let freed = self.release(request);
        debug_assert_eq!(freed, tokens);
        self.host
            .as_mut()
            .expect("checked above")
            .accept(request, tokens)
            .expect("capacity checked above");
        Ok(tokens)
    }

    /// Restores `request` from the host tier onto `candidates`, planning a
    /// fresh device placement with `strategy`. Returns the number of tokens
    /// moved; on error nothing changes.
    pub fn swap_in(
        &mut self,
        request: RequestId,
        candidates: &[InstanceId],
        strategy: PlacementStrategy,
    ) -> Result<u64, KvError> {
        let Some(host) = &self.host else {
            return Err(KvError::HostTierDisabled);
        };
        let tokens = host.swapped_tokens_of(request);
        if tokens == 0 {
            return Err(KvError::NothingToSwap { request });
        }
        let plan = plan_placement(request, tokens, &self.free_slots_on(candidates), strategy)
            .ok_or(KvError::NoSwapInPlacement {
                request,
                requested: tokens,
            })?;
        self.host.as_mut().expect("checked above").release(request);
        self.commit(&plan)
            .expect("placement planned against current free slots");
        Ok(tokens)
    }

    // ---- Prefix-cache tier --------------------------------------------------

    /// Enables the prefix-cache tier. The cache starts empty; enabling it
    /// changes no device-side state.
    ///
    /// # Panics
    ///
    /// Panics if the tier is already enabled or the config is invalid.
    pub fn enable_prefix_cache(&mut self, config: PrefixCacheConfig) {
        assert!(self.prefix.is_none(), "prefix cache enabled twice");
        self.prefix = Some(PrefixCache::new(config));
    }

    /// The prefix cache, if enabled.
    pub fn prefix(&self) -> Option<&PrefixCache> {
        self.prefix.as_ref()
    }

    /// Returns true if the prefix-cache tier is enabled.
    pub fn prefix_enabled(&self) -> bool {
        self.prefix.is_some()
    }

    /// Tokens a prompt of `prompt_len` tokens in `conversation` could adopt
    /// right now (zero when the tier is disabled or nothing matches).
    pub fn prefix_match_len(&self, conversation: ConversationId, prompt_len: u64) -> u64 {
        self.prefix
            .as_ref()
            .map(|c| c.match_len(conversation, prompt_len))
            .unwrap_or(0)
    }

    /// Pins `conversation`'s retained entry for a pending waiter. No-op when
    /// the tier is disabled.
    pub fn prefix_waiter_add(&mut self, conversation: ConversationId) {
        if let Some(cache) = &mut self.prefix {
            cache.waiter_add(conversation);
        }
    }

    /// Releases one waiter pin on `conversation`. No-op when the tier is
    /// disabled.
    pub fn prefix_waiter_drop(&mut self, conversation: ConversationId) {
        if let Some(cache) = &mut self.prefix {
            cache.waiter_drop(conversation);
        }
    }

    /// Retains a finished request's device-resident KV as `conversation`'s
    /// cached prefix instead of releasing it. The slots stay allocated under
    /// `request`; a previous entry for the conversation (the prior turn's
    /// shorter context) is released and replaced. Returns the tokens
    /// retained — zero (with a plain release) when the tier is disabled or
    /// the request holds nothing on the device.
    pub fn prefix_retain(
        &mut self,
        request: RequestId,
        conversation: ConversationId,
        now: SimTime,
    ) -> u64 {
        let tokens = self.tokens_of(request);
        let Some(cache) = &mut self.prefix else {
            self.release(request);
            return 0;
        };
        if tokens == 0 {
            return 0;
        }
        if let Some(old) = cache.insert(conversation, request, tokens, now) {
            self.release(old.owner);
        }
        tokens
    }

    /// Atomically adopts `conversation`'s retained prefix for `request`: the
    /// cached slots are renamed from the finished owner to `request` on every
    /// instance holding them — no copy, no transient free/alloc window — and
    /// the entry leaves the index. Returns the adopted token count, or
    /// `None` when nothing matches a prompt of `prompt_len` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `request` already holds device slots (adoption must precede
    /// the request's first prefill commit).
    pub fn prefix_adopt(
        &mut self,
        request: RequestId,
        conversation: ConversationId,
        prompt_len: u64,
    ) -> Option<u64> {
        let cache = self.prefix.as_ref()?;
        if cache.match_len(conversation, prompt_len) == 0 {
            return None;
        }
        assert!(
            !self.residency.contains_key(&request),
            "{request} must adopt its prefix before holding any KV"
        );
        let entry = self
            .prefix
            .as_mut()
            .expect("checked above")
            .remove(conversation)
            .expect("matched above");
        let locations = self
            .residency
            .remove(&entry.owner)
            .expect("cached owners are device-resident");
        for &(inst, _) in &locations {
            self.pools[inst.index()].rename(entry.owner, request);
        }
        self.residency.insert(request, locations);
        Some(entry.tokens)
    }

    /// Runs the prefix-cache eviction policy for one scheduling point:
    /// watermark eviction of unpinned entries down to the configured device
    /// utilisation, then head-of-queue headroom eviction (unpinned first,
    /// then pinned; the head's own conversation is never a victim — the
    /// tokens it would free equal the extra tokens the head would then have
    /// to prefill). Victims' slots are released. Returns `(entries, tokens)`
    /// evicted; `(0, 0)` always when the tier is disabled.
    pub fn prefix_evict_point(&mut self, head: Option<PrefixDemand>) -> (u64, u64) {
        let Some(cache) = &self.prefix else {
            return (0, 0);
        };
        let watermark = cache.config().high_watermark;
        let mut entries = 0u64;
        let mut tokens = 0u64;
        while self.device_utilization() > watermark {
            let Some(victim) = self
                .prefix
                .as_ref()
                .expect("checked above")
                .eviction_victim(false, None)
            else {
                break;
            };
            tokens += self.prefix_evict_one(victim);
            entries += 1;
        }
        if let Some(head) = head {
            let cached = head
                .conversation
                .map(|c| self.prefix_match_len(c, head.remaining_input))
                .unwrap_or(0);
            let demand = head.remaining_input - cached + head.reserve_output;
            // A request no eviction could ever admit (the schedulers will
            // reject or queue it) must not flush the whole cache.
            if demand <= self.total_capacity() {
                while self.total_free() < demand {
                    let cache = self.prefix.as_ref().expect("checked above");
                    let Some(victim) = cache
                        .eviction_victim(false, head.conversation)
                        .or_else(|| cache.eviction_victim(true, head.conversation))
                    else {
                        break;
                    };
                    tokens += self.prefix_evict_one(victim);
                    entries += 1;
                }
            }
        }
        (entries, tokens)
    }

    /// Total tokens retained by the prefix cache (zero when disabled).
    pub fn prefix_retained_tokens(&self) -> u64 {
        self.prefix
            .as_ref()
            .map(|c| c.retained_tokens())
            .unwrap_or(0)
    }

    /// Tokens retained by the prefix cache on `instance` (zero when
    /// disabled). O(entries); cached owners never migrate, so the per-entry
    /// holdings are stable while retained.
    pub fn prefix_retained_on(&self, instance: InstanceId) -> u64 {
        let Some(cache) = &self.prefix else {
            return 0;
        };
        cache
            .entries()
            .map(|(_, e)| self.pools[instance.index()].used_by(e.owner))
            .sum()
    }

    /// Used slots excluding retained prefixes — the *active* working set.
    /// Retained prefixes are reclaimable on demand, so capacity-driven
    /// policies (pressure watermarks, admission budgets) treat them as
    /// free; counting them as used would let a full cache pause admission
    /// forever while pinning the very requests that would unpin it.
    pub fn active_used(&self) -> u64 {
        self.total_used() - self.prefix_retained_tokens()
    }

    /// Device utilisation of the active working set in `[0, 1]`: like
    /// [`Self::device_utilization`] but excluding reclaimable retained
    /// prefixes. Identical to it when the tier is disabled.
    pub fn active_utilization(&self) -> f64 {
        let cap = self.total_capacity();
        if cap == 0 {
            return 1.0;
        }
        self.active_used() as f64 / cap as f64
    }

    /// Evicts retained prefixes until `instances` hold at least `needed`
    /// free slots between them, LRU-first (unpinned before pinned) among
    /// the entries holding tokens on any of `instances`. The engine calls
    /// this just before committing prefill placements, decode appends,
    /// migrations and swap-ins, so admission policies may count retained
    /// tokens as reclaimable and execution makes good on it. Returns
    /// `(entries, tokens)` evicted; `(0, 0)` always when the tier is
    /// disabled or the slots are already free.
    pub fn prefix_evict_for_instances(
        &mut self,
        instances: &[InstanceId],
        needed: u64,
    ) -> (u64, u64) {
        if self.prefix.is_none() {
            return (0, 0);
        }
        let mut entries = 0u64;
        let mut tokens = 0u64;
        loop {
            let free: u64 = instances
                .iter()
                .map(|&i| self.pools[i.index()].free())
                .sum();
            if free >= needed {
                break;
            }
            let cache = self.prefix.as_ref().expect("checked above");
            let mut best: Option<(bool, SimTime, ConversationId)> = None;
            for (conv, entry) in cache.entries() {
                let holds_here = instances
                    .iter()
                    .any(|&i| self.pools[i.index()].used_by(entry.owner) > 0);
                if !holds_here {
                    continue;
                }
                let key = (cache.waiters(conv) > 0, entry.retained_at, conv);
                if best.map(|b| key < b).unwrap_or(true) {
                    best = Some(key);
                }
            }
            let Some((_, _, victim)) = best else {
                break;
            };
            tokens += self.prefix_evict_one(victim);
            entries += 1;
        }
        (entries, tokens)
    }

    /// Evicts one retained entry, releasing its owner's slots. Returns the
    /// tokens freed.
    fn prefix_evict_one(&mut self, conversation: ConversationId) -> u64 {
        let entry = self
            .prefix
            .as_mut()
            .expect("eviction requires the tier")
            .remove(conversation)
            .expect("victims come from the index");
        let freed = self.release(entry.owner);
        debug_assert_eq!(freed, entry.tokens);
        freed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefix::PrefixCacheConfig;

    fn pool() -> UnifiedKvPool {
        UnifiedKvPool::with_capacities(&[100_000, 200_000, 400_000])
    }

    #[test]
    fn commit_and_release_roundtrip() {
        let mut p = pool();
        let plan = p
            .plan(
                RequestId(0),
                600_000,
                &[InstanceId(0), InstanceId(1), InstanceId(2)],
                PlacementStrategy::Balanced,
            )
            .expect("fits in unified pool");
        p.commit(&plan).expect("commit");
        assert_eq!(p.tokens_of(RequestId(0)), 600_000);
        assert_eq!(p.total_free(), 100_000);
        assert_eq!(p.release(RequestId(0)), 600_000);
        assert_eq!(p.total_free(), 700_000);
        assert!(p.check_invariants().is_ok());
    }

    #[test]
    fn failed_commit_leaves_pool_untouched() {
        let mut p = pool();
        // Hand-craft a plan that exceeds instance 0's capacity.
        let plan = PlacementPlan {
            request: RequestId(0),
            spans: vec![(InstanceId(0), 150_000)],
        };
        assert!(p.commit(&plan).is_err());
        assert_eq!(p.total_used(), 0);
    }

    #[test]
    fn append_grows_request_on_master() {
        let mut p = pool();
        p.append(RequestId(3), InstanceId(1), 1).expect("room");
        p.append(RequestId(3), InstanceId(1), 1).expect("room");
        assert_eq!(p.tokens_of(RequestId(3)), 2);
        assert_eq!(p.locations_of(RequestId(3)), vec![(InstanceId(1), 2)]);
    }

    #[test]
    fn migrate_moves_tokens_between_instances() {
        let mut p = pool();
        p.append(RequestId(1), InstanceId(0), 50_000).expect("room");
        let mv = p
            .migrate(RequestId(1), InstanceId(0), InstanceId(2), 20_000)
            .expect("room");
        assert_eq!(mv.tokens, 20_000);
        assert_eq!(p.instance(InstanceId(0)).used_by(RequestId(1)), 30_000);
        assert_eq!(p.instance(InstanceId(2)).used_by(RequestId(1)), 20_000);
        assert!(p.check_invariants().is_ok());
    }

    #[test]
    fn migrate_rejects_when_destination_full() {
        let mut p = UnifiedKvPool::with_capacities(&[100, 10]);
        p.append(RequestId(1), InstanceId(0), 50).expect("room");
        assert!(matches!(
            p.migrate(RequestId(1), InstanceId(0), InstanceId(1), 20),
            Err(KvError::InsufficientCapacity { .. })
        ));
        // Source untouched on failure.
        assert_eq!(p.instance(InstanceId(0)).used_by(RequestId(1)), 50);
    }

    #[test]
    fn drain_instance_moves_everything_or_nothing() {
        let mut p = UnifiedKvPool::with_capacities(&[100, 60, 60]);
        p.append(RequestId(1), InstanceId(0), 100).expect("room");
        let moves = p
            .drain_instance(RequestId(1), InstanceId(0))
            .expect("fits elsewhere");
        assert_eq!(moves.iter().map(|m| m.tokens).sum::<u64>(), 100);
        assert_eq!(p.instance(InstanceId(0)).used_by(RequestId(1)), 0);
        assert_eq!(p.tokens_of(RequestId(1)), 100);

        // Now fill the other instances so a second drain cannot succeed.
        let mut p2 = UnifiedKvPool::with_capacities(&[100, 10, 10]);
        p2.append(RequestId(1), InstanceId(0), 100).expect("room");
        assert!(p2.drain_instance(RequestId(1), InstanceId(0)).is_none());
        assert_eq!(p2.instance(InstanceId(0)).used_by(RequestId(1)), 100);
    }

    #[test]
    fn resident_requests_lists_unique_ids() {
        let mut p = pool();
        p.append(RequestId(5), InstanceId(0), 10).expect("room");
        p.append(RequestId(5), InstanceId(1), 10).expect("room");
        p.append(RequestId(2), InstanceId(2), 10).expect("room");
        assert_eq!(p.resident_requests(), vec![RequestId(2), RequestId(5)]);
    }

    #[test]
    fn add_instances_extends_capacity() {
        let mut p = pool();
        let before = p.total_capacity();
        p.add_instances(2, 50_000);
        assert_eq!(p.num_instances(), 5);
        assert_eq!(p.total_capacity(), before + 100_000);
        assert_eq!(p.instance(InstanceId(4)).capacity(), 50_000);
    }

    #[test]
    fn utilization_reports_per_instance_in_sorted_order() {
        let mut p = UnifiedKvPool::with_capacities(&[100, 100]);
        p.append(RequestId(1), InstanceId(0), 50).expect("room");
        let u = p.utilization();
        assert_eq!(u, vec![(InstanceId(0), 0.5), (InstanceId(1), 0.0)]);
    }

    #[test]
    fn swap_out_and_in_roundtrip_preserves_tokens() {
        let mut p = pool();
        p.enable_host_tier(1_000_000);
        let plan = p
            .plan(
                RequestId(4),
                250_000,
                &[InstanceId(0), InstanceId(1), InstanceId(2)],
                PlacementStrategy::Balanced,
            )
            .expect("fits");
        p.commit(&plan).expect("commit");
        let moved = p.swap_out(RequestId(4)).expect("host has room");
        assert_eq!(moved, 250_000);
        assert_eq!(p.tokens_of(RequestId(4)), 0);
        assert_eq!(p.swapped_tokens_of(RequestId(4)), 250_000);
        assert_eq!(p.total_swapped(), 250_000);
        assert_eq!(p.total_used(), 0);
        assert!(p.check_invariants().is_ok());
        // A swapped request cannot grow device residency.
        assert!(matches!(
            p.append(RequestId(4), InstanceId(0), 1),
            Err(KvError::AlreadySwapped { .. })
        ));
        let restored = p
            .swap_in(
                RequestId(4),
                &[InstanceId(0), InstanceId(1), InstanceId(2)],
                PlacementStrategy::PackMostFree,
            )
            .expect("device has room");
        assert_eq!(restored, 250_000);
        assert_eq!(p.tokens_of(RequestId(4)), 250_000);
        assert_eq!(p.total_swapped(), 0);
        assert!(p.check_invariants().is_ok());
    }

    #[test]
    fn swap_errors_leave_both_tiers_untouched() {
        let mut p = UnifiedKvPool::with_capacities(&[100, 100]);
        // Disabled tier.
        p.append(RequestId(1), InstanceId(0), 50).expect("room");
        assert!(matches!(
            p.swap_out(RequestId(1)),
            Err(KvError::HostTierDisabled)
        ));
        // Tiny host: eviction does not fit.
        p.enable_host_tier(10);
        assert!(matches!(
            p.swap_out(RequestId(1)),
            Err(KvError::HostInsufficientCapacity { requested: 50, .. })
        ));
        assert_eq!(p.tokens_of(RequestId(1)), 50);
        // Nothing to swap either way.
        assert!(matches!(
            p.swap_out(RequestId(9)),
            Err(KvError::NothingToSwap { .. })
        ));
        assert!(matches!(
            p.swap_in(
                RequestId(9),
                &[InstanceId(0)],
                PlacementStrategy::PackMostFree
            ),
            Err(KvError::NothingToSwap { .. })
        ));
        assert!(p.check_invariants().is_ok());

        // Swap-in with no feasible placement keeps the request parked.
        let mut q = UnifiedKvPool::with_capacities(&[100]);
        q.enable_host_tier(100);
        q.append(RequestId(2), InstanceId(0), 80).expect("room");
        q.swap_out(RequestId(2)).expect("fits on host");
        q.append(RequestId(3), InstanceId(0), 60).expect("room");
        assert!(matches!(
            q.swap_in(
                RequestId(2),
                &[InstanceId(0)],
                PlacementStrategy::PackMostFree
            ),
            Err(KvError::NoSwapInPlacement { requested: 80, .. })
        ));
        assert_eq!(q.swapped_tokens_of(RequestId(2)), 80);
        assert!(q.check_invariants().is_ok());
    }

    #[test]
    fn device_utilization_tracks_pressure() {
        let mut p = UnifiedKvPool::with_capacities(&[100, 100]);
        assert_eq!(p.device_utilization(), 0.0);
        p.append(RequestId(0), InstanceId(0), 100).expect("room");
        assert!((p.device_utilization() - 0.5).abs() < 1e-12);
        assert!(!p.host_enabled());
        p.enable_host_tier(50);
        assert!(p.host_enabled());
        assert_eq!(p.host().expect("enabled").capacity(), 50);
    }

    #[test]
    fn prefix_retain_adopt_roundtrip_renames_slots_in_place() {
        let mut p = pool();
        p.enable_prefix_cache(PrefixCacheConfig::default());
        let conv = ConversationId(9);
        // Turn 0 finishes with 30k tokens spread over two instances.
        p.append(RequestId(0), InstanceId(0), 20_000).expect("room");
        p.append(RequestId(0), InstanceId(1), 10_000).expect("room");
        let retained = p.prefix_retain(RequestId(0), conv, SimTime::from_secs(1.0));
        assert_eq!(retained, 30_000);
        assert_eq!(p.tokens_of(RequestId(0)), 30_000, "slots stay allocated");
        assert_eq!(p.prefix().expect("enabled").retained_tokens(), 30_000);
        // A follow-up prompt strictly longer than the entry matches it...
        assert_eq!(p.prefix_match_len(conv, 45_000), 30_000);
        // ...and adoption renames the slots with no free/alloc transition.
        let used_before = p.total_used();
        let adopted = p.prefix_adopt(RequestId(1), conv, 45_000).expect("matched");
        assert_eq!(adopted, 30_000);
        assert_eq!(p.total_used(), used_before);
        assert_eq!(p.tokens_of(RequestId(0)), 0);
        assert_eq!(
            p.locations_of(RequestId(1)),
            vec![(InstanceId(0), 20_000), (InstanceId(1), 10_000)]
        );
        assert!(p.prefix().expect("enabled").is_empty());
        assert!(p.check_invariants().is_ok());
        // The next turn retains the grown context, replacing nothing.
        p.append(RequestId(1), InstanceId(2), 15_000).expect("room");
        assert_eq!(
            p.prefix_retain(RequestId(1), conv, SimTime::from_secs(2.0)),
            45_000
        );
        assert!(p.check_invariants().is_ok());
    }

    #[test]
    fn prefix_retain_replaces_and_releases_the_old_entry() {
        let mut p = UnifiedKvPool::with_capacities(&[1_000]);
        p.enable_prefix_cache(PrefixCacheConfig::default());
        let conv = ConversationId(1);
        p.append(RequestId(0), InstanceId(0), 100).expect("room");
        p.prefix_retain(RequestId(0), conv, SimTime::from_secs(1.0));
        // A later turn of the same conversation finished without adopting
        // (it arrived before turn 0 completed): retention replaces.
        p.append(RequestId(1), InstanceId(0), 300).expect("room");
        p.prefix_retain(RequestId(1), conv, SimTime::from_secs(2.0));
        assert_eq!(p.tokens_of(RequestId(0)), 0, "old owner released");
        assert_eq!(p.total_used(), 300);
        assert_eq!(p.prefix_match_len(conv, 301), 300);
        assert!(p.check_invariants().is_ok());
    }

    #[test]
    fn prefix_disabled_paths_are_noops() {
        let mut p = UnifiedKvPool::with_capacities(&[100]);
        assert!(!p.prefix_enabled());
        p.append(RequestId(0), InstanceId(0), 50).expect("room");
        // Retention without the tier falls back to a plain release.
        assert_eq!(
            p.prefix_retain(RequestId(0), ConversationId(0), SimTime::ZERO),
            0
        );
        assert_eq!(p.total_used(), 0);
        assert_eq!(p.prefix_match_len(ConversationId(0), 100), 0);
        assert_eq!(p.prefix_adopt(RequestId(1), ConversationId(0), 100), None);
        assert_eq!(p.prefix_evict_point(None), (0, 0));
        p.prefix_waiter_add(ConversationId(0));
        p.prefix_waiter_drop(ConversationId(0));
        assert!(p.check_invariants().is_ok());
    }

    #[test]
    fn prefix_watermark_eviction_is_lru_and_respects_pins() {
        let mut p = UnifiedKvPool::with_capacities(&[1_000]);
        p.enable_prefix_cache(PrefixCacheConfig {
            high_watermark: 0.5,
            block_tokens: 64,
        });
        for (i, at) in [(0u64, 3.0), (1u64, 1.0), (2u64, 2.0)] {
            p.append(RequestId(i), InstanceId(0), 300).expect("room");
            p.prefix_retain(RequestId(i), ConversationId(i), SimTime::from_secs(at));
        }
        // Pin the LRU entry (conversation 1): the watermark pass must skip
        // it and take conversation 2, then 0, stopping at 50% utilisation.
        p.prefix_waiter_add(ConversationId(1));
        let (entries, tokens) = p.prefix_evict_point(None);
        assert_eq!((entries, tokens), (2, 600));
        assert!(
            p.prefix_match_len(ConversationId(1), 1_000) > 0,
            "pinned survives"
        );
        assert_eq!(p.prefix_match_len(ConversationId(2), 1_000), 0);
        assert!(p.check_invariants().is_ok());
    }

    #[test]
    fn prefix_headroom_eviction_frees_for_the_queue_head() {
        let mut p = UnifiedKvPool::with_capacities(&[1_000]);
        p.enable_prefix_cache(PrefixCacheConfig {
            high_watermark: 1.0,
            block_tokens: 64,
        });
        for (i, at) in [(0u64, 2.0), (1u64, 1.0)] {
            p.append(RequestId(i), InstanceId(0), 400).expect("room");
            p.prefix_retain(RequestId(i), ConversationId(i), SimTime::from_secs(at));
        }
        // The head adopts its own 400-token entry, so its demand is the
        // 50-token suffix plus a 300-slot output reserve = 350 > 200 free.
        // Conversation 1's entry must go even though it is pinned —
        // headroom eviction may take pinned entries once unpinned ones run
        // out — while conversation 0 is protected as the head's own.
        p.prefix_waiter_add(ConversationId(1));
        let (entries, tokens) = p.prefix_evict_point(Some(PrefixDemand {
            conversation: Some(ConversationId(0)),
            remaining_input: 450,
            reserve_output: 300,
        }));
        assert_eq!((entries, tokens), (1, 400));
        assert!(p.total_free() >= 350);
        assert!(
            p.prefix_match_len(ConversationId(0), 450) > 0,
            "the head's own entry is never evicted"
        );
        assert!(p.check_invariants().is_ok());
    }

    #[test]
    fn prefix_match_requires_strictly_longer_prompt() {
        let mut p = UnifiedKvPool::with_capacities(&[1_000]);
        p.enable_prefix_cache(PrefixCacheConfig::default());
        p.append(RequestId(0), InstanceId(0), 200).expect("room");
        p.prefix_retain(RequestId(0), ConversationId(0), SimTime::ZERO);
        assert_eq!(p.prefix_match_len(ConversationId(0), 200), 0);
        assert_eq!(p.prefix_match_len(ConversationId(0), 201), 200);
        assert_eq!(p.prefix_adopt(RequestId(1), ConversationId(0), 200), None);
        assert!(p.check_invariants().is_ok());
    }

    #[test]
    fn residency_index_tracks_all_mutations() {
        let mut p = pool();
        let plan = p
            .plan(
                RequestId(7),
                250_000,
                &[InstanceId(0), InstanceId(1), InstanceId(2)],
                PlacementStrategy::Balanced,
            )
            .expect("fits");
        p.commit(&plan).expect("commit");
        p.append(RequestId(7), InstanceId(0), 5).expect("room");
        let before = p.locations_of(RequestId(7));
        assert_eq!(
            before.iter().map(|&(_, t)| t).sum::<u64>(),
            250_005,
            "index covers commit + append"
        );
        assert!(p.check_invariants().is_ok());

        let held0 = p.instance(InstanceId(0)).used_by(RequestId(7));
        p.migrate(RequestId(7), InstanceId(0), InstanceId(2), held0)
            .expect("room");
        assert_eq!(p.locations_ref(RequestId(7)).len(), 2);
        assert!(p.check_invariants().is_ok());

        // A failed migrate must leave the index untouched.
        let mut small = UnifiedKvPool::with_capacities(&[100, 10]);
        small.append(RequestId(1), InstanceId(0), 50).expect("room");
        assert!(small
            .migrate(RequestId(1), InstanceId(0), InstanceId(1), 20)
            .is_err());
        assert_eq!(small.locations_of(RequestId(1)), vec![(InstanceId(0), 50)]);
        assert!(small.check_invariants().is_ok());

        assert_eq!(p.release(RequestId(7)), 250_005);
        assert!(p.locations_ref(RequestId(7)).is_empty());
        assert_eq!(p.resident_requests(), Vec::<RequestId>::new());
        assert!(p.check_invariants().is_ok());
    }
}
