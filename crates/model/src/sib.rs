//! The Scaling Information Base (SIB).
//!
//! LoongServe's global manager consults the SIB before every scheduling
//! decision (paper §3, §5.5): it holds profiling results for a grid of
//! batch shapes and parallelism strategies, the analytical models fitted
//! from them, and derived thresholds such as the prefill "tipping point" and
//! the decode compute-bound batch size.
//!
//! The original system stores profiles in SQLite and gathers them with
//! dedicated profiling tools on real GPUs; here the profiles are produced by
//! the roofline substrate (optionally perturbed with measurement noise) and
//! stored as a serde-serialisable structure, preserving the workflow:
//! profile once, fit, and consult cheap fitted models at scheduling time.

use crate::analytical::{AnalyticalModel, BatchFeatures};
use crate::config::ModelConfig;
use crate::roofline::{CostModel, ParallelConfig};
use loong_cluster::gpu::LinkSpec;
use loong_simcore::rng::SimRng;
use rand_like_noise::perturb;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Small helper module so the noise model is easy to audit.
mod rand_like_noise {
    use loong_simcore::rng::SimRng;
    use rand::Rng;

    /// Multiplies `value` by a factor drawn uniformly from
    /// `[1 - amplitude, 1 + amplitude]`, modelling run-to-run measurement
    /// jitter on real hardware.
    pub fn perturb(value: f64, amplitude: f64, rng: &mut SimRng) -> f64 {
        if amplitude == 0.0 {
            return value;
        }
        let factor = 1.0 + rng.gen_range(-amplitude..amplitude);
        value * factor
    }
}

/// One profiled iteration: a batch shape, a parallelism strategy and the
/// observed prefill latency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileRecord {
    /// Parallelism strategy the batch ran under.
    pub parallel: ParallelConfig,
    /// Input lengths of the batch.
    pub input_lens: Vec<u64>,
    /// Measured (simulated) iteration latency in seconds.
    pub measured_s: f64,
}

impl ProfileRecord {
    /// Summary features of the profiled batch.
    pub fn features(&self) -> BatchFeatures {
        BatchFeatures::from_lens(&self.input_lens)
    }
}

/// The profile store plus everything fitted/derived from it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalingInfoBase {
    /// Raw profiling records, grouped by nothing — filtering happens at fit
    /// time so the same store can serve several parallelism strategies.
    pub records: Vec<ProfileRecord>,
    /// Fitted analytical models per parallelism strategy.
    pub prefill_models: HashMap<String, AnalyticalModel>,
    /// Prefill tipping point (tokens per iteration) per parallelism strategy.
    pub prefill_saturation_tokens: HashMap<String, u64>,
    /// Decode compute-bound batch-size threshold per tensor-parallel degree.
    pub decode_compute_bound_bs: HashMap<usize, usize>,
}

impl ScalingInfoBase {
    /// Creates an empty SIB.
    pub fn new() -> Self {
        ScalingInfoBase {
            records: Vec::new(),
            prefill_models: HashMap::new(),
            prefill_saturation_tokens: HashMap::new(),
            decode_compute_bound_bs: HashMap::new(),
        }
    }

    /// Profiles a grid of batch shapes under every parallelism strategy in
    /// `configs`, fits the analytical models, and records the derived
    /// thresholds.
    ///
    /// `noise_amplitude` adds multiplicative measurement jitter (e.g. 0.02
    /// for ±2%), exercising the robustness of the least-squares fit exactly
    /// as real profiling noise would.
    pub fn profile(
        cost_model: &CostModel,
        configs: &[ParallelConfig],
        sp_link: LinkSpec,
        noise_amplitude: f64,
        rng: &mut SimRng,
    ) -> Self {
        let mut sib = ScalingInfoBase::new();
        let grid = Self::default_profile_grid(&cost_model.model);
        for &parallel in configs {
            let mut samples: Vec<(BatchFeatures, f64)> = Vec::new();
            for lens in &grid {
                let ideal = cost_model.prefill_cost(lens, parallel, sp_link).total();
                let measured = perturb(ideal, noise_amplitude, rng);
                sib.records.push(ProfileRecord {
                    parallel,
                    input_lens: lens.clone(),
                    measured_s: measured,
                });
                samples.push((BatchFeatures::from_lens(lens), measured));
            }
            if let Some(fitted) = AnalyticalModel::fit_features(&samples) {
                sib.prefill_models.insert(parallel.label(), fitted);
            }
            sib.prefill_saturation_tokens.insert(
                parallel.label(),
                cost_model.prefill_saturation_tokens(parallel),
            );
            sib.decode_compute_bound_bs
                .entry(parallel.tp)
                .or_insert_with(|| cost_model.decode_compute_bound_batch_size(parallel.tp));
        }
        sib
    }

    /// The batch-shape grid used for profiling: a spread of batch sizes and
    /// input lengths covering the model's context window, small enough to be
    /// "a few profiling results" (paper §5.5) yet diverse enough for a
    /// well-conditioned fit.
    pub fn default_profile_grid(model: &ModelConfig) -> Vec<Vec<u64>> {
        let max_len = model.max_context_len as u64;
        let lens: Vec<u64> = [1_000u64, 5_000, 10_000, 50_000, 100_000, 200_000, 400_000]
            .iter()
            .copied()
            .filter(|&l| l <= max_len)
            .collect();
        let batch_sizes = [1usize, 2, 4, 8, 16];
        let mut grid = Vec::new();
        for &bs in &batch_sizes {
            for &len in &lens {
                // Keep the total token count bounded so profiling stays cheap.
                if bs as u64 * len <= max_len {
                    grid.push(vec![len; bs]);
                }
            }
        }
        // A few mixed-length batches so Σl and Σl² decorrelate, sized as
        // fractions of the context window so they stay valid for
        // small-context models.
        grid.push(vec![max_len / 64, max_len / 8]);
        grid.push(vec![max_len / 128, max_len / 16, max_len / 4]);
        grid.push(vec![
            max_len / 256,
            max_len / 256,
            max_len / 256,
            max_len / 8,
        ]);
        grid.retain(|lens| lens.iter().all(|&l| l > 0));
        grid
    }

    /// The fitted prefill model for a parallelism strategy, if profiled.
    pub fn prefill_model(&self, parallel: ParallelConfig) -> Option<&AnalyticalModel> {
        self.prefill_models.get(&parallel.label())
    }

    /// Predicted prefill iteration time using the fitted model, falling back
    /// to `fallback` when the strategy was never profiled.
    pub fn predict_prefill(
        &self,
        lens: &[u64],
        parallel: ParallelConfig,
        fallback: impl FnOnce() -> f64,
    ) -> f64 {
        match self.prefill_model(parallel) {
            Some(m) => m.predict(lens).max(0.0),
            None => fallback(),
        }
    }

    /// The prefill tipping point (tokens) for a strategy, if profiled.
    pub fn saturation_tokens(&self, parallel: ParallelConfig) -> Option<u64> {
        self.prefill_saturation_tokens
            .get(&parallel.label())
            .copied()
    }

    /// The decode compute-bound batch-size threshold for a tensor-parallel
    /// degree, if profiled.
    pub fn decode_threshold(&self, tp: usize) -> Option<usize> {
        self.decode_compute_bound_bs.get(&tp).copied()
    }

    /// Records for one parallelism strategy, handy for validation plots.
    pub fn records_for(&self, parallel: ParallelConfig) -> Vec<&ProfileRecord> {
        self.records
            .iter()
            .filter(|r| r.parallel == parallel)
            .collect()
    }

    /// Serialises the SIB to a JSON string (the stand-in for the paper's
    /// SQLite store).
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Restores a SIB from its JSON form.
    pub fn from_json(json: &str) -> serde_json::Result<Self> {
        serde_json::from_str(json)
    }
}

impl Default for ScalingInfoBase {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_configs() -> Vec<ParallelConfig> {
        vec![
            ParallelConfig::new(4, 2),
            ParallelConfig::new(2, 4),
            ParallelConfig::new(1, 8),
            ParallelConfig::new(8, 1),
            ParallelConfig::new(2, 1),
            ParallelConfig::new(2, 2),
            ParallelConfig::new(2, 3),
        ]
    }

    #[test]
    fn profiling_fits_every_config() {
        let cm = CostModel::new(ModelConfig::lwm_1m_text());
        let mut rng = SimRng::seed(1);
        let sib = ScalingInfoBase::profile(
            &cm,
            &paper_configs(),
            LinkSpec::nvlink_a800(),
            0.0,
            &mut rng,
        );
        for p in paper_configs() {
            assert!(
                sib.prefill_model(p).is_some(),
                "missing model for {}",
                p.label()
            );
            assert!(sib.saturation_tokens(p).is_some());
        }
        assert!(sib.decode_threshold(2).is_some());
    }

    #[test]
    fn fitted_model_matches_roofline_within_ten_percent() {
        // Figure 15: the analytical model stays within ~10% of measurements.
        let cm = CostModel::new(ModelConfig::lwm_1m_text());
        let mut rng = SimRng::seed(2);
        let configs = [
            ParallelConfig::new(4, 2),
            ParallelConfig::new(2, 4),
            ParallelConfig::new(1, 8),
        ];
        let sib = ScalingInfoBase::profile(&cm, &configs, LinkSpec::nvlink_a800(), 0.01, &mut rng);
        for p in configs {
            let model = sib.prefill_model(p).expect("profiled");
            let validation: Vec<(Vec<u64>, f64)> = [30_000u64, 80_000, 150_000, 300_000]
                .iter()
                .map(|&l| {
                    let lens = vec![l];
                    let t = cm.prefill_cost(&lens, p, LinkSpec::nvlink_a800()).total();
                    (lens, t)
                })
                .collect();
            let err = model.mean_relative_error(&validation);
            assert!(err < 0.10, "{}: mean relative error {err}", p.label());
        }
    }

    #[test]
    fn predict_prefill_falls_back_when_unprofiled() {
        let sib = ScalingInfoBase::new();
        let t = sib.predict_prefill(&[10_000], ParallelConfig::new(2, 4), || 42.0);
        assert_eq!(t, 42.0);
    }

    #[test]
    fn json_roundtrip_preserves_models() {
        let cm = CostModel::new(ModelConfig::lwm_1m_text());
        let mut rng = SimRng::seed(3);
        let configs = [ParallelConfig::new(2, 4)];
        let sib = ScalingInfoBase::profile(&cm, &configs, LinkSpec::nvlink_a800(), 0.0, &mut rng);
        let json = sib.to_json().expect("serialise");
        let restored = ScalingInfoBase::from_json(&json).expect("deserialise");
        let p = ParallelConfig::new(2, 4);
        assert_eq!(
            sib.prefill_model(p).unwrap().alpha,
            restored.prefill_model(p).unwrap().alpha
        );
        assert_eq!(sib.records.len(), restored.records.len());
    }

    #[test]
    fn profile_grid_respects_context_window() {
        let small = ModelConfig::llama2_7b();
        let grid = ScalingInfoBase::default_profile_grid(&small);
        for lens in &grid {
            let total: u64 = lens.iter().sum();
            assert!(
                total <= small.max_context_len as u64 * 2,
                "grid entry exceeds context window badly"
            );
        }
    }

    #[test]
    fn records_for_filters_by_config() {
        let cm = CostModel::new(ModelConfig::lwm_1m_text());
        let mut rng = SimRng::seed(4);
        let configs = [ParallelConfig::new(2, 4), ParallelConfig::new(8, 1)];
        let sib = ScalingInfoBase::profile(&cm, &configs, LinkSpec::nvlink_a800(), 0.0, &mut rng);
        let r24 = sib.records_for(ParallelConfig::new(2, 4));
        assert!(!r24.is_empty());
        assert!(r24.iter().all(|r| r.parallel == ParallelConfig::new(2, 4)));
    }
}
