//! # loong-model
//!
//! LLM cost modelling for LoongServe-RS.
//!
//! This crate answers the question every scheduler in the workspace asks:
//! *"how long will this iteration take, and how much memory will it use?"*
//!
//! * [`config`] — transformer architectures (LWM-1M-Text / Llama-2-7B and
//!   friends) and their derived parameter/KV-cache byte counts,
//! * [`attention`] — pluggable attention-cost policies: dense (the paper's
//!   assumption), LServe-style page-sparse decode and hierarchical prefill,
//! * [`roofline`] — the iteration-time model combining a compute roofline
//!   with tensor-parallel and sequence-parallel communication costs; the
//!   simulated substitute for real CUDA kernels,
//! * [`builder`] — [`CostModelBuilder`], the named-parts front door to the
//!   cost API (model + GPU + link + attention policy + pinned group shape),
//! * [`analytical`] — the paper's α + β·Σl + γ·Σl² model (Eq. 7) with its
//!   least-squares fit,
//! * [`sib`] — the Scaling Information Base: profile store, fitted models
//!   and the thresholds the global manager consults every iteration.
//!
//! # Examples
//!
//! ```
//! use loong_model::prelude::*;
//! use loong_cluster::gpu::LinkSpec;
//!
//! let cost = CostModel::new(ModelConfig::lwm_1m_text());
//! let long = cost.prefill_cost(&[100_000], ParallelConfig::new(2, 4), LinkSpec::nvlink_a800());
//! let short = cost.prefill_cost(&[1_000], ParallelConfig::new(2, 4), LinkSpec::nvlink_a800());
//! assert!(long.total() > 10.0 * short.total());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analytical;
pub mod attention;
pub mod builder;
pub mod config;
pub mod roofline;
pub mod sib;

pub use analytical::{AnalyticalModel, BatchFeatures};
pub use attention::{
    AttentionCost, AttentionCostPolicy, Dense, HierarchicalPrefill, PageSparseDecode,
};
pub use builder::{BoundCostModel, CostModelBuilder};
pub use config::ModelConfig;
pub use roofline::{CostModel, IterationCost, ParallelConfig};
pub use sib::{ProfileRecord, ScalingInfoBase};

/// Convenient glob-import of the most commonly used types.
pub mod prelude {
    pub use crate::analytical::{AnalyticalModel, BatchFeatures};
    pub use crate::attention::{
        AttentionCost, AttentionCostPolicy, Dense, HierarchicalPrefill, PageSparseDecode,
    };
    pub use crate::builder::{BoundCostModel, CostModelBuilder};
    pub use crate::config::ModelConfig;
    pub use crate::roofline::{CostModel, IterationCost, ParallelConfig};
    pub use crate::sib::{ProfileRecord, ScalingInfoBase};
}
