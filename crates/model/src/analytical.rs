//! The analytical iteration-time model of paper §5.5 (Equation 7).
//!
//! The global manager cannot afford to evaluate a detailed cost model for
//! every candidate scheduling decision, and it cannot profile every
//! combination of request lengths in advance. The paper therefore fits, per
//! parallelism strategy, the three-coefficient model
//!
//! ```text
//! T_p(R) = alpha + beta * sum(len_r) + gamma * sum(len_r^2)
//! ```
//!
//! by least squares against a handful of profiled iterations. This module
//! implements the model, the least-squares fit (via the 3×3 normal
//! equations), and error metrics used to reproduce Figure 15.

use serde::{Deserialize, Serialize};

/// Summary features of a prefill batch: the number of requests, the sum of
/// input lengths and the sum of squared input lengths.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchFeatures {
    /// Number of requests in the batch.
    pub batch_size: usize,
    /// Σ len.
    pub sum_len: f64,
    /// Σ len².
    pub sum_len_sq: f64,
}

impl BatchFeatures {
    /// Computes features from a list of input lengths.
    pub fn from_lens(lens: &[u64]) -> Self {
        let sum_len = lens.iter().map(|&l| l as f64).sum();
        let sum_len_sq = lens.iter().map(|&l| (l as f64) * (l as f64)).sum();
        BatchFeatures {
            batch_size: lens.len(),
            sum_len,
            sum_len_sq,
        }
    }
}

/// The fitted α + β·Σl + γ·Σl² model for one parallelism strategy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalyticalModel {
    /// Constant overhead (seconds).
    pub alpha: f64,
    /// Cost per input token (seconds/token) — FFN and projection work.
    pub beta: f64,
    /// Cost per squared input token (seconds/token²) — attention work.
    pub gamma: f64,
}

impl AnalyticalModel {
    /// Predicted iteration time for a batch with the given input lengths.
    pub fn predict(&self, lens: &[u64]) -> f64 {
        self.predict_features(&BatchFeatures::from_lens(lens))
    }

    /// Predicted iteration time from precomputed features.
    pub fn predict_features(&self, f: &BatchFeatures) -> f64 {
        self.alpha + self.beta * f.sum_len + self.gamma * f.sum_len_sq
    }

    /// Fits the model by ordinary least squares on `(lens, measured_time)`
    /// samples.
    ///
    /// Returns `None` if fewer than three samples are provided or the normal
    /// equations are singular (e.g. all samples have identical features).
    pub fn fit(samples: &[(Vec<u64>, f64)]) -> Option<Self> {
        let features: Vec<(BatchFeatures, f64)> = samples
            .iter()
            .map(|(lens, t)| (BatchFeatures::from_lens(lens), *t))
            .collect();
        Self::fit_features(&features)
    }

    /// Fits the model from precomputed features.
    pub fn fit_features(samples: &[(BatchFeatures, f64)]) -> Option<Self> {
        if samples.len() < 3 {
            return None;
        }
        // Normal equations X^T X w = X^T y with X rows [1, S, Q]. The raw
        // features span ~10 orders of magnitude, so scale columns to unit
        // magnitude before solving to keep the 3x3 system well conditioned.
        let s_scale = samples
            .iter()
            .map(|(f, _)| f.sum_len.abs())
            .fold(0.0f64, f64::max)
            .max(1.0);
        let q_scale = samples
            .iter()
            .map(|(f, _)| f.sum_len_sq.abs())
            .fold(0.0f64, f64::max)
            .max(1.0);

        let mut xtx = [[0.0f64; 3]; 3];
        let mut xty = [0.0f64; 3];
        for (f, y) in samples {
            let row = [1.0, f.sum_len / s_scale, f.sum_len_sq / q_scale];
            for i in 0..3 {
                for j in 0..3 {
                    xtx[i][j] += row[i] * row[j];
                }
                xty[i] += row[i] * y;
            }
        }
        let w = solve3(xtx, xty)?;
        Some(AnalyticalModel {
            alpha: w[0],
            beta: w[1] / s_scale,
            gamma: w[2] / q_scale,
        })
    }

    /// Mean relative prediction error over a validation set, as a fraction
    /// (0.1 = 10%). Samples with non-positive measured time are skipped.
    pub fn mean_relative_error(&self, samples: &[(Vec<u64>, f64)]) -> f64 {
        let mut total = 0.0;
        let mut n = 0usize;
        for (lens, measured) in samples {
            if *measured <= 0.0 {
                continue;
            }
            let predicted = self.predict(lens);
            total += ((predicted - measured) / measured).abs();
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }

    /// Maximum relative prediction error over a validation set.
    pub fn max_relative_error(&self, samples: &[(Vec<u64>, f64)]) -> f64 {
        samples
            .iter()
            .filter(|(_, m)| *m > 0.0)
            .map(|(lens, m)| ((self.predict(lens) - m) / m).abs())
            .fold(0.0, f64::max)
    }
}

/// Solves a 3×3 linear system by Gaussian elimination with partial pivoting.
/// Returns `None` if the matrix is (numerically) singular.
fn solve3(mut a: [[f64; 3]; 3], mut b: [f64; 3]) -> Option<[f64; 3]> {
    for col in 0..3 {
        // Pivot: pick the row with the largest magnitude in this column.
        let pivot_row = (col..3)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("matrix entries are finite")
            })
            .expect("non-empty range");
        if a[pivot_row][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        let pivot = a[col];
        for row in (col + 1)..3 {
            let factor = a[row][col] / pivot[col];
            for (entry, pivot_entry) in a[row].iter_mut().zip(pivot.iter()).skip(col) {
                *entry -= factor * pivot_entry;
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = [0.0f64; 3];
    for row in (0..3).rev() {
        let mut sum = b[row];
        for k in (row + 1)..3 {
            sum -= a[row][k] * x[k];
        }
        x[row] = sum / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_recovery_of_synthetic_coefficients() {
        // Generate data from a known (alpha, beta, gamma) and check the fit
        // recovers it.
        let truth = AnalyticalModel {
            alpha: 0.004,
            beta: 2.5e-7,
            gamma: 3.0e-12,
        };
        let mut samples = Vec::new();
        for bs in [1usize, 2, 4, 8] {
            for len in [1_000u64, 10_000, 50_000, 100_000, 200_000] {
                let lens = vec![len; bs];
                samples.push((lens.clone(), truth.predict(&lens)));
            }
        }
        let fitted = AnalyticalModel::fit(&samples).expect("fit should succeed");
        assert!((fitted.alpha - truth.alpha).abs() / truth.alpha < 1e-6);
        assert!((fitted.beta - truth.beta).abs() / truth.beta < 1e-6);
        assert!((fitted.gamma - truth.gamma).abs() / truth.gamma < 1e-6);
        assert!(fitted.mean_relative_error(&samples) < 1e-9);
    }

    #[test]
    fn fit_requires_three_samples() {
        let samples = vec![(vec![10u64], 1.0), (vec![20u64], 2.0)];
        assert!(AnalyticalModel::fit(&samples).is_none());
    }

    #[test]
    fn degenerate_samples_are_rejected() {
        // Identical features in every sample: the normal matrix is singular.
        let samples = vec![(vec![100u64], 1.0); 5];
        assert!(AnalyticalModel::fit(&samples).is_none());
    }

    #[test]
    fn features_sum_correctly() {
        let f = BatchFeatures::from_lens(&[3, 4]);
        assert_eq!(f.batch_size, 2);
        assert_eq!(f.sum_len, 7.0);
        assert_eq!(f.sum_len_sq, 25.0);
    }

    #[test]
    fn relative_error_ignores_zero_measurements() {
        let m = AnalyticalModel {
            alpha: 0.0,
            beta: 1.0,
            gamma: 0.0,
        };
        let err = m.mean_relative_error(&[(vec![1], 0.0), (vec![2], 2.0)]);
        assert_eq!(err, 0.0);
        assert_eq!(m.max_relative_error(&[(vec![2], 4.0)]), 0.5);
    }

    #[test]
    fn solver_handles_permuted_rows() {
        // A system that requires pivoting.
        let a = [[0.0, 1.0, 0.0], [1.0, 0.0, 0.0], [0.0, 0.0, 2.0]];
        let b = [3.0, 5.0, 8.0];
        let x = solve3(a, b).expect("solvable");
        assert_eq!(x, [5.0, 3.0, 4.0]);
    }

    #[test]
    fn solver_detects_singularity() {
        let a = [[1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [1.0, 1.0, 1.0]];
        assert!(solve3(a, [1.0, 2.0, 3.0]).is_none());
    }
}
