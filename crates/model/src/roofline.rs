//! Roofline iteration-time model.
//!
//! This module is the simulated substitute for running real CUDA kernels: it
//! predicts how long one serving iteration takes for a given batch, model,
//! GPU and parallelism configuration. The prediction combines
//!
//! * a **compute roofline** — FLOPs divided by sustained FLOP/s, floored by
//!   the time needed to stream weights and KV cache from HBM,
//! * **tensor-parallel communication** — two ring all-reduces of the layer
//!   activations per transformer layer,
//! * **sequence-parallel communication** — the StripedAttention KV ring
//!   during prefill and the query/partial-output exchange during
//!   distributed decoding, both partially overlapped with attention
//!   computation, and
//! * a constant **per-layer launch overhead**.
//!
//! The shapes this produces — prefill scaling nearly linearly with more
//! GPUs while decode barely improves (Figure 2), sequence parallelism
//! matching or beating tensor parallelism for long sequences (Figure 3),
//! and multi-master decode winning only at large batch sizes (Figure 14b) —
//! are the inputs every scheduling policy in the workspace reasons about.

use crate::attention::{AttentionCost, AttentionCostPolicy};
use crate::builder::CostModelBuilder;
use crate::config::ModelConfig;
use loong_cluster::comm::CommModel;
use loong_cluster::gpu::{GpuSpec, LinkSpec};
use serde::{Deserialize, Serialize};

/// Degree-of-parallelism configuration of one ESP parallel group.
///
/// `tp` GPUs form one elastic instance (tensor parallelism); `sp` elastic
/// instances form the group (sequence parallelism). The paper's single-node
/// LoongServe configuration is `tp = 2, sp <= 4`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParallelConfig {
    /// Tensor-parallel degree inside each elastic instance.
    pub tp: usize,
    /// Number of elastic instances cooperating on the batch (the DoP).
    pub sp: usize,
}

impl ParallelConfig {
    /// Creates a configuration with `tp`-way tensor and `sp`-way sequence
    /// parallelism.
    ///
    /// # Panics
    ///
    /// Panics if either degree is zero.
    pub fn new(tp: usize, sp: usize) -> Self {
        assert!(
            tp >= 1 && sp >= 1,
            "parallel degrees must be >= 1 (tp={tp}, sp={sp})"
        );
        ParallelConfig { tp, sp }
    }

    /// Total number of GPUs used by the group.
    pub fn total_gpus(&self) -> usize {
        self.tp * self.sp
    }

    /// A short label such as `SP4TP2`, matching the paper's figure legends.
    pub fn label(&self) -> String {
        format!("SP{}TP{}", self.sp, self.tp)
    }
}

/// Breakdown of one iteration's predicted latency, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct IterationCost {
    /// Compute time (GEMMs + attention), already floored by HBM streaming.
    pub compute_s: f64,
    /// Tensor-parallel all-reduce time.
    pub tp_comm_s: f64,
    /// Sequence-parallel communication time remaining after overlap with
    /// attention computation.
    pub sp_comm_s: f64,
    /// Kernel-launch and synchronisation overhead.
    pub overhead_s: f64,
    /// Extra time spent on elastic-scaling actions folded into this
    /// iteration (e.g. proactive KV retention writes); zero for plain
    /// iterations.
    pub scaling_s: f64,
}

impl IterationCost {
    /// Total predicted iteration latency.
    pub fn total(&self) -> f64 {
        self.compute_s + self.tp_comm_s + self.sp_comm_s + self.overhead_s + self.scaling_s
    }
}

/// The roofline cost model: model architecture + GPU + intra-instance link
/// + attention-cost policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Transformer architecture being served.
    pub model: ModelConfig,
    /// GPU device model.
    pub gpu: GpuSpec,
    /// Link between GPUs of the same elastic instance (always intra-node in
    /// LoongServe: instances never span nodes).
    pub intra_instance_link: LinkSpec,
    /// Fraction of sequence-parallel communication that overlaps with
    /// attention computation (StripedAttention / multi-master decode
    /// overlap). 1.0 means perfect overlap.
    pub sp_overlap_fraction: f64,
    /// Constant per-iteration scheduling overhead in seconds (Python/Ray RPC
    /// and batching overhead in the real system).
    pub per_iteration_overhead_s: f64,
    /// Attention-cost policy pricing every attention FLOP and KV-read term
    /// (dense, page-sparse decode, or hierarchical prefill).
    pub attention: AttentionCostPolicy,
}

impl CostModel {
    /// Creates a cost model with the paper's testbed defaults (A800 GPUs,
    /// NVLink within instances).
    pub fn new(model: ModelConfig) -> Self {
        CostModel {
            model,
            gpu: GpuSpec::a800_80gb(),
            intra_instance_link: LinkSpec::nvlink_a800(),
            sp_overlap_fraction: 0.90,
            per_iteration_overhead_s: 2e-3,
            attention: AttentionCostPolicy::Dense,
        }
    }

    /// Starts a [`CostModelBuilder`] for the given model — the preferred way
    /// to assemble a cost model with a non-default GPU, link or attention
    /// policy.
    pub fn builder(model: ModelConfig) -> CostModelBuilder {
        CostModelBuilder::new(model)
    }

    /// Replaces the GPU spec (builder style).
    pub fn with_gpu(mut self, gpu: GpuSpec) -> Self {
        self.gpu = gpu;
        self
    }

    /// Replaces the intra-instance link (builder style).
    pub fn with_intra_link(mut self, link: LinkSpec) -> Self {
        self.intra_instance_link = link;
        self
    }

    /// Replaces the attention-cost policy (builder style).
    pub fn with_attention(mut self, attention: AttentionCostPolicy) -> Self {
        self.attention = attention;
        self
    }

    /// Extra attention time a prefill of `suffix` tokens pays for attending
    /// over `context` previously computed (prefix-cached) tokens, beyond the
    /// suffix-only attention [`Self::prefill_cost`] already charges:
    /// `attn(suffix, context + suffix) - attn(suffix, suffix)`, on the
    /// group's GPUs. Zero when either argument is zero, so cache-off paths
    /// pay nothing. The serving engine adds this to suffix prefills after
    /// prefix adoption, mirroring how [`Self::chunked_prefill_cost`] spans
    /// the chunk's attention over the processed prefix.
    pub fn cached_context_attention_s(
        &self,
        suffix: u64,
        context: u64,
        parallel: ParallelConfig,
    ) -> f64 {
        if suffix == 0 || context == 0 {
            return 0.0;
        }
        let m = &self.model;
        let gpus = parallel.total_gpus() as f64;
        let suffix = suffix as f64;
        let extra = self
            .attention
            .prefill_attention_flops(m, suffix, context as f64 + suffix)
            - self.attention.prefill_attention_flops(m, suffix, suffix);
        extra.max(0.0) / gpus / self.gpu.effective_flops()
    }

    /// Predicted cost of a **prefill** iteration.
    ///
    /// `input_lens` are the prompt lengths of the requests in the batch;
    /// `parallel` is the group configuration; `sp_link` is the bottleneck
    /// link between instances of the group (NVLink on one node, InfiniBand
    /// across nodes).
    pub fn prefill_cost(
        &self,
        input_lens: &[u64],
        parallel: ParallelConfig,
        sp_link: LinkSpec,
    ) -> IterationCost {
        if input_lens.is_empty() {
            return IterationCost::default();
        }
        let m = &self.model;
        let gpus = parallel.total_gpus() as f64;
        let total_tokens: f64 = input_lens.iter().map(|&l| l as f64).sum();

        // Compute: dense projections/FFN are linear in tokens; attention is
        // quadratic per request.
        let linear_flops = m.linear_flops_per_token() * total_tokens;
        let attn_flops: f64 = input_lens
            .iter()
            .map(|&l| {
                self.attention
                    .prefill_attention_flops(m, l as f64, l as f64)
            })
            .sum();
        let linear_time = linear_flops / gpus / self.gpu.effective_flops();
        let attn_time = attn_flops / gpus / self.gpu.effective_flops();
        // Weights must be streamed from HBM at least once per iteration.
        let weight_stream_time =
            m.weight_bytes_per_gpu(parallel.tp) / self.gpu.effective_bandwidth();
        let compute_s = linear_time.max(weight_stream_time) + attn_time;

        // Tensor-parallel all-reduces: two per layer over the activations of
        // the tokens resident on one instance.
        let tokens_per_instance = total_tokens / parallel.sp as f64;
        let act_bytes = tokens_per_instance * m.hidden_size as f64 * m.dtype_bytes as f64;
        let tp_comm = CommModel::new(self.intra_instance_link);
        let tp_comm_s = m.num_layers as f64 * 2.0 * tp_comm.ring_allreduce(act_bytes, parallel.tp);

        // Sequence-parallel ring (StripedAttention): sp-1 steps per layer,
        // each moving one instance's KV shard for that layer. GPUs of the
        // same instance send their KV-head shards in parallel, so the bytes
        // per link are divided by tp.
        let sp_comm_raw = if parallel.sp > 1 {
            let kv_layer_bytes_per_instance =
                2.0 * (m.num_kv_heads * m.head_dim() * m.dtype_bytes) as f64 * tokens_per_instance
                    / parallel.tp as f64;
            let sp_comm = CommModel::new(sp_link);
            m.num_layers as f64
                * (parallel.sp - 1) as f64
                * sp_comm.ring_sendrecv_step(kv_layer_bytes_per_instance)
        } else {
            0.0
        };
        // The ring overlaps with the attention computation of the chunk that
        // is already resident.
        let sp_comm_s = (sp_comm_raw - attn_time * self.sp_overlap_fraction)
            .max(sp_comm_raw * (1.0 - self.sp_overlap_fraction))
            .max(0.0);

        let overhead_s =
            self.per_iteration_overhead_s + m.num_layers as f64 * self.gpu.per_layer_overhead_s;

        IterationCost {
            compute_s,
            tp_comm_s,
            sp_comm_s,
            overhead_s,
            scaling_s: 0.0,
        }
    }

    /// Predicted extra cost of **proactive scale-down** folded into a prefill
    /// iteration: the destination instances write the retained KV tensors
    /// into their local pools as the ring passes by. The bytes were already
    /// in flight, so the only new work is the HBM write at the destination.
    pub fn proactive_scale_down_overhead(
        &self,
        retained_tokens: u64,
        parallel: ParallelConfig,
    ) -> f64 {
        let bytes = retained_tokens as f64 * self.model.kv_bytes_per_token() / parallel.tp as f64;
        bytes / self.gpu.effective_bandwidth()
    }

    /// Predicted cost of a **decode** iteration.
    ///
    /// `context_lens` are the current sequence lengths (prompt + generated)
    /// of the requests in the batch; each request produces one new token.
    /// The group has `parallel.sp` instances of which `masters` drive FFN
    /// computation and store the newly generated KV (`1 <= masters <= sp`).
    pub fn decode_cost(
        &self,
        context_lens: &[u64],
        parallel: ParallelConfig,
        masters: usize,
        sp_link: LinkSpec,
    ) -> IterationCost {
        assert!(
            masters >= 1 && masters <= parallel.sp,
            "masters must be in 1..=sp"
        );
        if context_lens.is_empty() {
            return IterationCost::default();
        }
        let m = &self.model;
        let batch = context_lens.len() as f64;
        // Tokens' worth of KV cache the policy actually streams per step;
        // dense reads the full context, page-sparse decode caps each request
        // at its token budget.
        let kv_read_tokens: f64 = context_lens
            .iter()
            .map(|&l| self.attention.decode_kv_read_tokens(l as f64))
            .sum();

        // Dense computation: each master handles batch/masters requests on
        // its tp GPUs; all masters run concurrently, so the critical path is
        // one master's share.
        let tokens_per_master = batch / masters as f64;
        let linear_flops = m.linear_flops_per_token() * tokens_per_master;
        let linear_time = linear_flops / parallel.tp as f64 / self.gpu.effective_flops();
        // Decode is usually bound by streaming the weight shard from HBM.
        let weight_stream_time =
            m.weight_bytes_per_gpu(parallel.tp) / self.gpu.effective_bandwidth();
        let dense_time = linear_time.max(weight_stream_time);

        // Attention: every instance scans the KV cache stored locally. The
        // cache is spread over all sp instances (token-granularity pool), so
        // each instance streams roughly total/sp of it.
        let attn_flops: f64 = context_lens
            .iter()
            .map(|&l| self.attention.decode_attention_flops(m, l as f64))
            .sum();
        let attn_flops_time =
            attn_flops / (parallel.sp * parallel.tp) as f64 / self.gpu.effective_flops();
        let kv_bytes_per_gpu =
            kv_read_tokens * m.kv_bytes_per_token() / parallel.sp as f64 / parallel.tp as f64;
        let kv_stream_time = kv_bytes_per_gpu / self.gpu.effective_bandwidth();
        let attn_time = attn_flops_time.max(kv_stream_time);

        let compute_s = dense_time + attn_time;

        // Tensor-parallel all-reduces of the (tiny) decode activations.
        let act_bytes = tokens_per_master * m.hidden_size as f64 * m.dtype_bytes as f64;
        let tp_comm = CommModel::new(self.intra_instance_link);
        let tp_comm_s = m.num_layers as f64 * 2.0 * tp_comm.ring_allreduce(act_bytes, parallel.tp);

        // Sequence-parallel decode: each master broadcasts its query tensors
        // to the other instances and gathers partial attention outputs back
        // (two transfers per layer). Masters operate concurrently; the
        // per-layer critical path is one master exchanging with sp-1 peers.
        let sp_comm_raw = if parallel.sp > 1 {
            let q_bytes = tokens_per_master * m.hidden_size as f64 * m.dtype_bytes as f64;
            let sp_comm = CommModel::new(sp_link);
            m.num_layers as f64 * 2.0 * sp_comm.master_exchange(q_bytes, parallel.sp)
        } else {
            0.0
        };
        // The exchange overlaps with the local attention over mastered
        // requests, but the latency component never fully hides.
        let sp_comm_s = (sp_comm_raw - attn_time * self.sp_overlap_fraction)
            .max(sp_comm_raw * (1.0 - self.sp_overlap_fraction))
            .max(0.0);

        // Multi-instance decode pays an extra synchronisation per layer.
        let sync_overhead = if parallel.sp > 1 {
            m.num_layers as f64 * self.gpu.per_layer_overhead_s * 0.5
        } else {
            0.0
        };
        let overhead_s = self.per_iteration_overhead_s
            + m.num_layers as f64 * self.gpu.per_layer_overhead_s
            + sync_overhead;

        IterationCost {
            compute_s,
            tp_comm_s,
            sp_comm_s,
            overhead_s,
            scaling_s: 0.0,
        }
    }

    /// Predicted cost of a **chunked-prefill** iteration (SARATHI /
    /// SplitFuse-style baselines): `chunk_tokens` new prompt tokens of one
    /// request (which has already processed `processed_tokens` of its
    /// prompt) are fused with one decode step for the requests in
    /// `decode_context_lens`.
    ///
    /// The chunk's attention must read the KV of everything processed so
    /// far, which is what makes chunking progressively less efficient for
    /// very long prompts — the effect the paper measures against SplitFuse.
    pub fn chunked_prefill_cost(
        &self,
        chunk_tokens: u64,
        processed_tokens: u64,
        decode_context_lens: &[u64],
        parallel: ParallelConfig,
        sp_link: LinkSpec,
    ) -> IterationCost {
        if chunk_tokens == 0 {
            return self.decode_cost(decode_context_lens, parallel, parallel.sp, sp_link);
        }
        let m = &self.model;
        let gpus = parallel.total_gpus() as f64;
        let chunk = chunk_tokens as f64;
        let context = (processed_tokens + chunk_tokens) as f64;
        let decode_batch = decode_context_lens.len() as f64;

        // Dense work: the chunk plus one token per fused decode request.
        let linear_flops = m.linear_flops_per_token() * (chunk + decode_batch);
        let linear_time = linear_flops / gpus / self.gpu.effective_flops();
        let weight_stream_time =
            m.weight_bytes_per_gpu(parallel.tp) / self.gpu.effective_bandwidth();

        // Attention: the chunk attends to the whole processed prefix; fused
        // decode requests each attend to their full context.
        let chunk_attn = self.attention.prefill_attention_flops(m, chunk, context);
        let decode_attn: f64 = decode_context_lens
            .iter()
            .map(|&l| self.attention.decode_attention_flops(m, l as f64))
            .sum();
        let attn_flops_time = (chunk_attn + decode_attn) / gpus / self.gpu.effective_flops();
        // The prefix KV and the decode KV must be streamed from HBM — both
        // read sets capped by the policy.
        let kv_bytes_per_gpu = (self.attention.chunk_kv_read_tokens(chunk, context)
            + decode_context_lens
                .iter()
                .map(|&l| self.attention.decode_kv_read_tokens(l as f64))
                .sum::<f64>())
            * m.kv_bytes_per_token()
            / gpus;
        let kv_stream_time = kv_bytes_per_gpu / self.gpu.effective_bandwidth();
        let attn_time = attn_flops_time.max(kv_stream_time);

        let compute_s = linear_time.max(weight_stream_time) + attn_time;

        // Tensor-parallel all-reduces over the fused batch activations.
        let act_bytes = (chunk + decode_batch) / parallel.sp as f64
            * m.hidden_size as f64
            * m.dtype_bytes as f64;
        let tp_comm = CommModel::new(self.intra_instance_link);
        let tp_comm_s = m.num_layers as f64 * 2.0 * tp_comm.ring_allreduce(act_bytes, parallel.tp);

        // Sequence-parallel ring for the chunk (only when sp > 1).
        let sp_comm_s = if parallel.sp > 1 {
            let kv_layer_bytes = 2.0
                * (m.num_kv_heads * m.head_dim() * m.dtype_bytes) as f64
                * (chunk / parallel.sp as f64)
                / parallel.tp as f64;
            let sp_comm = CommModel::new(sp_link);
            let raw = m.num_layers as f64
                * (parallel.sp - 1) as f64
                * sp_comm.ring_sendrecv_step(kv_layer_bytes);
            (raw - attn_time * self.sp_overlap_fraction)
                .max(raw * (1.0 - self.sp_overlap_fraction))
                .max(0.0)
        } else {
            0.0
        };

        let overhead_s =
            self.per_iteration_overhead_s + m.num_layers as f64 * self.gpu.per_layer_overhead_s;

        IterationCost {
            compute_s,
            tp_comm_s,
            sp_comm_s,
            overhead_s,
            scaling_s: 0.0,
        }
    }

    /// Time to reactively migrate the KV cache of `tokens` tokens between
    /// two instances over `link` — the cost LoongServe's proactive
    /// mechanisms avoid and the reactive baselines pay.
    pub fn kv_migration_time(&self, tokens: u64, link: LinkSpec) -> f64 {
        CommModel::new(link).migrate(tokens as f64 * self.model.kv_bytes_per_token())
    }

    /// The batch size at which the decode phase transitions from
    /// memory-bound (weight streaming) to compute-bound (FFN GEMMs) on a
    /// `tp`-GPU instance. The global manager uses this threshold to decide
    /// when scaling up the decode group pays off (paper §5.4).
    ///
    /// Context-free form: each request's marginal cost is its FFN GEMM work
    /// alone. Equivalent to
    /// [`Self::decode_compute_bound_batch_size_at_context`] at context 0.
    pub fn decode_compute_bound_batch_size(&self, tp: usize) -> usize {
        self.decode_compute_bound_batch_size_at_context(tp, 0)
            .expect("zero-context decode is always compute-bound eventually")
    }

    /// Policy-aware form of [`Self::decode_compute_bound_batch_size`]: the
    /// batch size at which decode turns compute-bound when every request
    /// carries `context_len` cached tokens. Each added request then also
    /// streams its policy-capped KV read set, so long contexts raise the
    /// threshold — and under dense attention a large enough context makes
    /// decode *never* compute-bound (`None`), while page-sparse decode caps
    /// the KV term at the token budget and keeps the threshold finite.
    pub fn decode_compute_bound_batch_size_at_context(
        &self,
        tp: usize,
        context_len: u64,
    ) -> Option<usize> {
        let weight_time = self.model.weight_bytes_per_gpu(tp) / self.gpu.effective_bandwidth();
        let flops_per_token_per_gpu = self.model.linear_flops_per_token() / tp as f64;
        let time_per_token = flops_per_token_per_gpu / self.gpu.effective_flops();
        let kv_time_per_request = self.attention.decode_kv_read_tokens(context_len as f64)
            * self.model.kv_bytes_per_token()
            / tp as f64
            / self.gpu.effective_bandwidth();
        if time_per_token <= kv_time_per_request {
            return None;
        }
        Some(
            (weight_time / (time_per_token - kv_time_per_request))
                .ceil()
                .max(1.0) as usize,
        )
    }

    /// The number of prefill tokens per iteration beyond which a group of
    /// the given configuration is compute-bound: adding more requests only
    /// lengthens the iteration without improving GPU efficiency. The
    /// dispatching step stops admitting prefill work at this point
    /// (paper §5.1).
    ///
    /// Two effects set the point: the GEMM roofline (weights must be
    /// streamed once regardless of batch size) and the fixed per-iteration
    /// overhead, which must be amortised over enough compute to stay
    /// negligible.
    ///
    /// Context-free form: equivalent to
    /// [`Self::prefill_saturation_tokens_at_context`] at context 0.
    pub fn prefill_saturation_tokens(&self, parallel: ParallelConfig) -> u64 {
        self.prefill_saturation_tokens_at_context(parallel, 0)
    }

    /// Policy-aware form of [`Self::prefill_saturation_tokens`]: the
    /// saturation point when each admitted token additionally attends over
    /// `processed_context` already-processed tokens (chunked prefills,
    /// prefix-cache suffixes). The marginal attention cost comes from the
    /// policy, so hierarchical prefill saturates later than dense over long
    /// prefixes (each token's attention is capped at the budget).
    pub fn prefill_saturation_tokens_at_context(
        &self,
        parallel: ParallelConfig,
        processed_context: u64,
    ) -> u64 {
        let weight_time =
            self.model.weight_bytes_per_gpu(parallel.tp) / self.gpu.effective_bandwidth();
        let gpus = parallel.total_gpus() as f64;
        let flops_per_token_per_gpu = self.model.linear_flops_per_token() / gpus;
        // Marginal attention FLOPs of one more token over the prefix, as
        // priced by the policy; exactly zero at context 0.
        let attn_extra = (self.attention.prefill_attention_flops(
            &self.model,
            1.0,
            processed_context as f64 + 1.0,
        ) - self
            .attention
            .prefill_attention_flops(&self.model, 1.0, 1.0))
        .max(0.0);
        let attn_per_token_per_gpu = attn_extra / gpus;
        let time_per_token =
            (flops_per_token_per_gpu + attn_per_token_per_gpu) / self.gpu.effective_flops();
        let roofline_tokens = (weight_time / time_per_token).ceil().max(1.0);
        let fixed_overhead = self.per_iteration_overhead_s
            + self.model.num_layers as f64 * self.gpu.per_layer_overhead_s;
        let amortize_tokens = (10.0 * fixed_overhead / time_per_token).ceil();
        roofline_tokens.max(amortize_tokens) as u64
    }

    /// The iteration-time budget corresponding to
    /// [`Self::prefill_saturation_tokens`] — the "tipping point" used by the
    /// dispatcher.
    pub fn prefill_saturation_time(&self, parallel: ParallelConfig, sp_link: LinkSpec) -> f64 {
        let tokens = self.prefill_saturation_tokens(parallel);
        self.prefill_cost(&[tokens], parallel, sp_link).total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::PageSparseDecode;

    fn model() -> CostModel {
        CostModel::new(ModelConfig::lwm_1m_text())
    }

    fn nvlink() -> LinkSpec {
        LinkSpec::nvlink_a800()
    }

    #[test]
    fn long_prefill_is_much_slower_than_short() {
        // Figure 2 / §2.4: 100K tokens is ~100x slower than 1K tokens on the
        // same 8 GPUs.
        let cm = model();
        let p = ParallelConfig::new(8, 1);
        let t_1k = cm.prefill_cost(&[1_000], p, nvlink()).total();
        let t_100k = cm.prefill_cost(&[100_000], p, nvlink()).total();
        let ratio = t_100k / t_1k;
        assert!(
            ratio > 50.0 && ratio < 500.0,
            "ratio {ratio} not in the ~100x regime"
        );
    }

    #[test]
    fn prefill_scales_with_more_gpus() {
        // Long prefill should speed up substantially when going from 2 to 8
        // GPUs (Figure 2 top).
        let cm = model();
        let t2 = cm
            .prefill_cost(&[100_000], ParallelConfig::new(2, 1), nvlink())
            .total();
        let t8 = cm
            .prefill_cost(&[100_000], ParallelConfig::new(8, 1), nvlink())
            .total();
        let speedup = t2 / t8;
        assert!(
            speedup > 2.5,
            "speedup {speedup} too small for compute-bound prefill"
        );
    }

    #[test]
    fn decode_scales_poorly() {
        // Figure 2 bottom: a single short decode barely benefits from more
        // GPUs because it is bound by weight streaming and layer overheads.
        let cm = model();
        let t2 = cm
            .decode_cost(&[100], ParallelConfig::new(2, 1), 1, nvlink())
            .total();
        let t8 = cm
            .decode_cost(&[100], ParallelConfig::new(8, 1), 1, nvlink())
            .total();
        let speedup = t2 / t8;
        assert!(speedup < 2.5, "decode speedup {speedup} implausibly large");
    }

    #[test]
    fn sp_beats_tp_for_long_prefill() {
        // Figure 3: for very long sequences, SP4TP2 matches or beats SP1TP8
        // because the KV ring moves fewer bytes than the activation
        // all-reduces.
        let cm = model();
        let tp8 = cm
            .prefill_cost(&[500_000], ParallelConfig::new(8, 1), nvlink())
            .total();
        let sp4 = cm
            .prefill_cost(&[500_000], ParallelConfig::new(2, 4), nvlink())
            .total();
        assert!(
            sp4 <= tp8 * 1.05,
            "SP4TP2 ({sp4}) should not lose to TP8 ({tp8})"
        );
    }

    #[test]
    fn sp_not_catastrophic_for_short_prefill() {
        // Short-sequence batches should not be dramatically hurt by SP.
        let cm = model();
        let lens = vec![1_000u64; 16];
        let tp8 = cm
            .prefill_cost(&lens, ParallelConfig::new(8, 1), nvlink())
            .total();
        let sp4 = cm
            .prefill_cost(&lens, ParallelConfig::new(2, 4), nvlink())
            .total();
        assert!(
            sp4 < tp8 * 2.0,
            "SP4TP2 ({sp4}) should stay within 2x of TP8 ({tp8})"
        );
    }

    #[test]
    fn multi_master_helps_large_batches() {
        // Figure 14b: at large batch sizes, 4 masters roughly halve the
        // iteration latency versus 1 master; at batch 1 the difference is a
        // small overhead.
        let cm = model();
        let p = ParallelConfig::new(2, 4);
        let big: Vec<u64> = vec![64; 1024];
        let t1 = cm.decode_cost(&big, p, 1, nvlink()).total();
        let t4 = cm.decode_cost(&big, p, 4, nvlink()).total();
        assert!(t1 / t4 > 1.5, "multi-master speedup {} too small", t1 / t4);

        let small: Vec<u64> = vec![200_000];
        let s1 = cm.decode_cost(&small, p, 1, nvlink()).total();
        let s4 = cm.decode_cost(&small, p, 4, nvlink()).total();
        assert!(
            s4 < s1 * 1.15,
            "multi-master should cost <15% extra at batch 1"
        );
    }

    #[test]
    fn proactive_scale_down_overhead_is_tiny() {
        // Figure 14a: retaining KV during the prefill ring costs <2% extra.
        let cm = model();
        let p = ParallelConfig::new(2, 4);
        let lens = [200_000u64];
        let base = cm.prefill_cost(&lens, p, nvlink()).total();
        let extra = cm.proactive_scale_down_overhead(200_000, p);
        assert!(
            extra / base < 0.02,
            "scale-down overhead {} too large",
            extra / base
        );
    }

    #[test]
    fn reactive_migration_is_much_slower_than_a_decode_step() {
        // §4.1: migrating a long request's KV takes far longer than one
        // decode iteration.
        let cm = model();
        let p = ParallelConfig::new(2, 4);
        let migrate = cm.kv_migration_time(500_000, nvlink());
        let decode = cm.decode_cost(&[500_000], p, 1, nvlink()).total();
        assert!(
            migrate > 3.0 * decode,
            "migration {migrate} vs decode {decode}"
        );
    }

    #[test]
    fn thresholds_are_sensible() {
        let cm = model();
        let bs = cm.decode_compute_bound_batch_size(2);
        assert!(bs > 32 && bs < 4096, "decode compute-bound threshold {bs}");
        let toks = cm.prefill_saturation_tokens(ParallelConfig::new(2, 4));
        assert!(
            toks > 100 && toks < 100_000,
            "prefill saturation tokens {toks}"
        );
    }

    #[test]
    fn chunked_prefill_total_work_exceeds_monolithic() {
        // Processing a 100K prompt in 2K chunks repeatedly re-reads the
        // growing KV prefix, so the summed chunk time exceeds one monolithic
        // prefill — the inefficiency the paper attributes to SplitFuse.
        let cm = model();
        let p = ParallelConfig::new(8, 1);
        let total = 100_000u64;
        let chunk = 2_000u64;
        let monolithic = cm.prefill_cost(&[total], p, nvlink()).total();
        let mut chunked = 0.0;
        let mut processed = 0;
        while processed < total {
            chunked += cm
                .chunked_prefill_cost(chunk, processed, &[], p, nvlink())
                .total();
            processed += chunk;
        }
        assert!(
            chunked > monolithic,
            "chunked {chunked} vs monolithic {monolithic}"
        );
    }

    #[test]
    fn chunked_prefill_with_zero_chunk_is_a_decode() {
        let cm = model();
        let p = ParallelConfig::new(8, 1);
        let as_chunk = cm.chunked_prefill_cost(0, 0, &[5_000], p, nvlink()).total();
        let as_decode = cm.decode_cost(&[5_000], p, 1, nvlink()).total();
        assert!((as_chunk - as_decode).abs() < 1e-12);
    }

    #[test]
    fn fused_decode_tokens_add_cost() {
        let cm = model();
        let p = ParallelConfig::new(8, 1);
        let without = cm
            .chunked_prefill_cost(2_000, 10_000, &[], p, nvlink())
            .total();
        let with = cm
            .chunked_prefill_cost(2_000, 10_000, &[20_000; 16], p, nvlink())
            .total();
        assert!(with > without);
    }

    #[test]
    fn empty_batches_cost_nothing() {
        let cm = model();
        let p = ParallelConfig::new(2, 4);
        assert_eq!(cm.prefill_cost(&[], p, nvlink()).total(), 0.0);
        assert_eq!(cm.decode_cost(&[], p, 1, nvlink()).total(), 0.0);
    }

    #[test]
    fn cost_breakdown_sums_to_total() {
        let cm = model();
        let c = cm.prefill_cost(&[50_000, 1_000], ParallelConfig::new(2, 4), nvlink());
        let sum = c.compute_s + c.tp_comm_s + c.sp_comm_s + c.overhead_s + c.scaling_s;
        assert!((sum - c.total()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "masters must be in")]
    fn too_many_masters_panics() {
        let cm = model();
        let _ = cm.decode_cost(&[100], ParallelConfig::new(2, 2), 3, nvlink());
    }

    #[test]
    fn parallel_config_label() {
        assert_eq!(ParallelConfig::new(2, 4).label(), "SP4TP2");
        assert_eq!(ParallelConfig::new(8, 1).total_gpus(), 8);
    }

    #[test]
    fn sparse_decode_flattens_long_context_cost() {
        // The headline LServe effect: with page-sparse decode, decode cost
        // saturates at the token budget instead of growing linearly.
        let dense = model();
        let sparse = model().with_attention(AttentionCostPolicy::page_sparse());
        let p = ParallelConfig::new(2, 4);
        let d100k = dense.decode_cost(&[100_000], p, 1, nvlink()).total();
        let s100k = sparse.decode_cost(&[100_000], p, 1, nvlink()).total();
        let s800k = sparse.decode_cost(&[800_000], p, 1, nvlink()).total();
        assert!(s100k < d100k, "sparse {s100k} should beat dense {d100k}");
        // Flat beyond the budget: 8x the context, ~same cost.
        assert!(
            (s800k - s100k).abs() / s100k < 0.01,
            "sparse decode not flat: {s100k} vs {s800k}"
        );
    }

    #[test]
    fn hierarchical_prefill_cheapens_long_prompts() {
        let dense = model();
        let sparse = model().with_attention(AttentionCostPolicy::hierarchical());
        let p = ParallelConfig::new(8, 1);
        let d = dense.prefill_cost(&[500_000], p, nvlink()).total();
        let s = sparse.prefill_cost(&[500_000], p, nvlink()).total();
        assert!(s < d / 2.0, "hierarchical {s} vs dense {d}");
        // Short prompts are unchanged (under the budget the policy is dense).
        let d_short = dense.prefill_cost(&[2_000], p, nvlink()).total();
        let s_short = sparse.prefill_cost(&[2_000], p, nvlink()).total();
        assert_eq!(d_short, s_short);
    }

    #[test]
    fn sparse_policies_never_exceed_dense_iteration_cost() {
        let dense = model();
        let p = ParallelConfig::new(2, 4);
        for policy in AttentionCostPolicy::ablation_set() {
            let cm = model().with_attention(policy);
            for lens in [vec![1_000u64; 8], vec![200_000], vec![64; 256]] {
                assert!(
                    cm.prefill_cost(&lens, p, nvlink()).total()
                        <= dense.prefill_cost(&lens, p, nvlink()).total() + 1e-12
                );
                assert!(
                    cm.decode_cost(&lens, p, 2, nvlink()).total()
                        <= dense.decode_cost(&lens, p, 2, nvlink()).total() + 1e-12
                );
                assert!(
                    cm.chunked_prefill_cost(2_000, 100_000, &lens, p, nvlink())
                        .total()
                        <= dense
                            .chunked_prefill_cost(2_000, 100_000, &lens, p, nvlink())
                            .total()
                            + 1e-12
                );
            }
        }
    }

    #[test]
    fn context_aware_thresholds_delegate_at_zero() {
        let cm = model();
        assert_eq!(
            cm.decode_compute_bound_batch_size(2),
            cm.decode_compute_bound_batch_size_at_context(2, 0).unwrap()
        );
        let p = ParallelConfig::new(2, 4);
        assert_eq!(
            cm.prefill_saturation_tokens(p),
            cm.prefill_saturation_tokens_at_context(p, 0)
        );
    }

    #[test]
    fn dense_long_context_decode_never_compute_bound() {
        // At 1M-token contexts the dense KV stream per added request exceeds
        // the marginal GEMM time: decode stays memory-bound at any batch
        // size, so the threshold is None.
        let cm = model();
        assert_eq!(
            cm.decode_compute_bound_batch_size_at_context(2, 1_000_000),
            None
        );
        // Short contexts raise the threshold but keep it finite.
        let at0 = cm.decode_compute_bound_batch_size_at_context(2, 0).unwrap();
        let at200 = cm
            .decode_compute_bound_batch_size_at_context(2, 200)
            .unwrap();
        assert!(at200 > at0, "KV streaming should raise the threshold");
        // Page-sparse decode caps the KV read at the token budget, so its
        // threshold is *flat* in context beyond the budget (for LWM's MHA
        // KV the capped read still exceeds the marginal GEMM time at TP2,
        // so both sides are None — the point is they are equal).
        let sparse = model().with_attention(AttentionCostPolicy::page_sparse());
        let budget = PageSparseDecode::lserve().token_budget() as u64;
        assert_eq!(
            sparse.decode_compute_bound_batch_size_at_context(2, budget),
            sparse.decode_compute_bound_batch_size_at_context(2, 1_000_000)
        );
    }

    #[test]
    fn saturation_tokens_shrink_with_processed_context() {
        // The more prefix each token attends over, the sooner an iteration
        // saturates; hierarchical prefill caps the effect at its budget.
        let cm = model();
        let p = ParallelConfig::new(2, 4);
        let at0 = cm.prefill_saturation_tokens_at_context(p, 0);
        let at500k = cm.prefill_saturation_tokens_at_context(p, 500_000);
        assert!(
            at500k < at0,
            "dense saturation should shrink: {at500k} vs {at0}"
        );
        let sparse = model().with_attention(AttentionCostPolicy::hierarchical());
        let sparse500k = sparse.prefill_saturation_tokens_at_context(p, 500_000);
        assert!(
            sparse500k >= at500k,
            "hierarchical ({sparse500k}) should saturate no sooner than dense ({at500k})"
        );
    }
}
