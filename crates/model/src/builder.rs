//! Builder for [`CostModel`] — the front door of the cost API.
//!
//! [`CostModel::new`] takes only the model config and fills in the paper's
//! testbed defaults; every other knob used to be set through a growing pile
//! of positional `with_*` chains spread across examples and benches. The
//! builder gathers them in one place — model config, GPU, intra-instance
//! link, attention policy, overlap fraction, per-iteration overhead — and
//! can additionally pin a [`ParallelConfig`] and sequence-parallel link to
//! produce a [`BoundCostModel`], which is what figure benches actually
//! want: "price this batch on SP4TP2 over NVLink" without re-passing the
//! group shape at every call.
//!
//! [`CostModel::new`]: crate::roofline::CostModel::new

use crate::attention::AttentionCostPolicy;
use crate::config::ModelConfig;
use crate::roofline::{CostModel, IterationCost, ParallelConfig};
use loong_cluster::gpu::{GpuSpec, LinkSpec};

/// Assembles a [`CostModel`] from named parts instead of positional
/// constructor arguments. Defaults match [`CostModel::new`]: A800 GPUs,
/// NVLink within instances, 0.90 sequence-parallel overlap, 2 ms
/// per-iteration overhead, dense attention.
///
/// ```
/// use loong_model::prelude::*;
///
/// let cm = CostModel::builder(ModelConfig::lwm_1m_text())
///     .attention(AttentionCostPolicy::page_sparse())
///     .build();
/// assert_eq!(cm.attention.label(), "page-sparse-decode");
/// ```
///
/// [`CostModel::new`]: crate::roofline::CostModel::new
#[derive(Debug, Clone)]
pub struct CostModelBuilder {
    model: ModelConfig,
    gpu: GpuSpec,
    intra_instance_link: LinkSpec,
    sp_overlap_fraction: f64,
    per_iteration_overhead_s: f64,
    attention: AttentionCostPolicy,
    parallel: Option<ParallelConfig>,
    sp_link: Option<LinkSpec>,
}

impl CostModelBuilder {
    /// Starts a builder for the given model with testbed defaults.
    pub fn new(model: ModelConfig) -> Self {
        CostModelBuilder {
            model,
            gpu: GpuSpec::a800_80gb(),
            intra_instance_link: LinkSpec::nvlink_a800(),
            sp_overlap_fraction: 0.90,
            per_iteration_overhead_s: 2e-3,
            attention: AttentionCostPolicy::Dense,
            parallel: None,
            sp_link: None,
        }
    }

    /// Sets the GPU device model.
    pub fn gpu(mut self, gpu: GpuSpec) -> Self {
        self.gpu = gpu;
        self
    }

    /// Sets the link between GPUs of the same elastic instance.
    pub fn intra_link(mut self, link: LinkSpec) -> Self {
        self.intra_instance_link = link;
        self
    }

    /// Sets the attention-cost policy.
    pub fn attention(mut self, attention: AttentionCostPolicy) -> Self {
        self.attention = attention;
        self
    }

    /// Sets the fraction of sequence-parallel communication overlapped with
    /// attention computation.
    pub fn sp_overlap_fraction(mut self, fraction: f64) -> Self {
        self.sp_overlap_fraction = fraction;
        self
    }

    /// Sets the constant per-iteration scheduling overhead in seconds.
    pub fn per_iteration_overhead_s(mut self, overhead: f64) -> Self {
        self.per_iteration_overhead_s = overhead;
        self
    }

    /// Pins the group's parallel configuration (used by
    /// [`Self::build_bound`]).
    pub fn parallel(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = Some(parallel);
        self
    }

    /// Pins the bottleneck link between instances of the group (used by
    /// [`Self::build_bound`]).
    pub fn sp_link(mut self, link: LinkSpec) -> Self {
        self.sp_link = Some(link);
        self
    }

    /// Builds the [`CostModel`].
    pub fn build(self) -> CostModel {
        CostModel {
            model: self.model,
            gpu: self.gpu,
            intra_instance_link: self.intra_instance_link,
            sp_overlap_fraction: self.sp_overlap_fraction,
            per_iteration_overhead_s: self.per_iteration_overhead_s,
            attention: self.attention,
        }
    }

    /// Builds a [`BoundCostModel`] with the parallel configuration and
    /// sequence-parallel link pinned. Defaults: `SP1TP1`, and the
    /// intra-instance link doubling as the SP link (single-node groups).
    pub fn build_bound(self) -> BoundCostModel {
        let parallel = self.parallel.unwrap_or(ParallelConfig { tp: 1, sp: 1 });
        let sp_link = self.sp_link.unwrap_or(self.intra_instance_link);
        BoundCostModel {
            cost_model: self.build(),
            parallel,
            sp_link,
        }
    }
}

/// A [`CostModel`] with the group shape pinned: every pricing call stops
/// re-passing the [`ParallelConfig`] and SP link. The figure benches price
/// dozens of batches against one fixed group; this is their entry point.
#[derive(Debug, Clone)]
pub struct BoundCostModel {
    /// The underlying cost model.
    pub cost_model: CostModel,
    /// The pinned group configuration.
    pub parallel: ParallelConfig,
    /// The pinned bottleneck link between instances of the group.
    pub sp_link: LinkSpec,
}

impl BoundCostModel {
    /// Prefill cost of a batch on the pinned group.
    pub fn prefill(&self, input_lens: &[u64]) -> IterationCost {
        self.cost_model
            .prefill_cost(input_lens, self.parallel, self.sp_link)
    }

    /// Decode cost of a batch on the pinned group with `masters` masters.
    pub fn decode(&self, context_lens: &[u64], masters: usize) -> IterationCost {
        self.cost_model
            .decode_cost(context_lens, self.parallel, masters, self.sp_link)
    }

    /// Chunked-prefill cost on the pinned group.
    pub fn chunked_prefill(
        &self,
        chunk_tokens: u64,
        processed_tokens: u64,
        decode_context_lens: &[u64],
    ) -> IterationCost {
        self.cost_model.chunked_prefill_cost(
            chunk_tokens,
            processed_tokens,
            decode_context_lens,
            self.parallel,
            self.sp_link,
        )
    }

    /// Prefill saturation point of the pinned group.
    pub fn prefill_saturation_tokens(&self) -> u64 {
        self.cost_model.prefill_saturation_tokens(self.parallel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::AttentionCost;

    #[test]
    fn builder_defaults_match_cost_model_new() {
        let built = CostModel::builder(ModelConfig::lwm_1m_text()).build();
        let direct = CostModel::new(ModelConfig::lwm_1m_text());
        assert_eq!(built, direct);
    }

    #[test]
    fn builder_sets_every_knob() {
        let cm = CostModel::builder(ModelConfig::llama2_7b())
            .gpu(GpuSpec::a800_80gb())
            .intra_link(LinkSpec::nvlink_a800())
            .attention(AttentionCostPolicy::hierarchical())
            .sp_overlap_fraction(0.5)
            .per_iteration_overhead_s(1e-3)
            .build();
        assert_eq!(cm.attention.label(), "hierarchical-prefill");
        assert_eq!(cm.sp_overlap_fraction, 0.5);
        assert_eq!(cm.per_iteration_overhead_s, 1e-3);
    }

    #[test]
    fn bound_model_matches_unbound_calls() {
        let parallel = ParallelConfig::new(2, 4);
        let link = LinkSpec::nvlink_a800();
        let bound = CostModel::builder(ModelConfig::lwm_1m_text())
            .parallel(parallel)
            .sp_link(link)
            .build_bound();
        let unbound = CostModel::new(ModelConfig::lwm_1m_text());
        let lens = [50_000u64, 1_000];
        assert_eq!(
            bound.prefill(&lens).total(),
            unbound.prefill_cost(&lens, parallel, link).total()
        );
        assert_eq!(
            bound.decode(&lens, 2).total(),
            unbound.decode_cost(&lens, parallel, 2, link).total()
        );
        assert_eq!(
            bound.chunked_prefill(2_000, 10_000, &lens).total(),
            unbound
                .chunked_prefill_cost(2_000, 10_000, &lens, parallel, link)
                .total()
        );
        assert_eq!(
            bound.prefill_saturation_tokens(),
            unbound.prefill_saturation_tokens(parallel)
        );
    }

    #[test]
    fn build_bound_defaults_to_single_gpu_group() {
        let bound = CostModel::builder(ModelConfig::llama2_7b()).build_bound();
        assert_eq!(bound.parallel, ParallelConfig::new(1, 1));
    }
}
