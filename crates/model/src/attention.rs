//! Pluggable attention-cost policies.
//!
//! The roofline model historically charged **dense causal attention** over
//! the full context, which makes long-context decode cost grow linearly in
//! context length and dominate every experiment. The long-context serving
//! field has moved past that assumption: LServe ("Efficient Long-sequence
//! LLM Serving with Unified Sparse Attention") shows that page-sparse /
//! streaming decode with a fixed token budget makes decode cost *sublinear*
//! in context, and that hierarchical page selection lets prefill skip
//! attention for pages below the selection budget.
//!
//! This module breaks the dense assumption out of [`CostModel`]'s
//! arithmetic into a first-class policy API:
//!
//! * [`AttentionCost`] — the trait every policy implements. It owns **both**
//!   sides of the attention roofline: the FLOP counts *and* the HBM KV-read
//!   token counts (sparse decode also reads less KV, which matters because
//!   decode attention is bandwidth-bound).
//! * [`Dense`] — the paper's original behaviour, bit-for-bit identical to
//!   the pre-policy arithmetic (pinned by the golden digests).
//! * [`PageSparseDecode`] — LServe-style sparse decode: each step attends
//!   over a streaming sink + recent window plus a fixed budget of top-scored
//!   KV pages, so decode FLOPs and KV reads saturate at the token budget.
//!   Prefill stays dense.
//! * [`HierarchicalPrefill`] — LServe §4 hierarchical paging on the prefill
//!   side: each query block attends to at most the selection budget of
//!   context tokens, skipping pages below it. Decode stays dense.
//! * [`AttentionCostPolicy`] — the serialisable sum type carried by
//!   [`CostModel`]; it implements [`AttentionCost`] by delegation, so the
//!   whole workspace selects a policy per run without generics.
//!
//! # Invariants (pinned by `tests/sparse_attention_properties.rs`)
//!
//! 1. **Dense neutrality** — [`Dense`] delegates to the exact pre-policy
//!    arithmetic; every consumer produces bit-for-bit identical results.
//! 2. **Monotonicity** — no policy ever charges *more* than dense for the
//!    same shape: FLOPs are `min(dense, sparse-with-selection)` (a real
//!    kernel falls back to the dense path when the context fits the
//!    budget), and KV reads are capped at the dense read set.
//! 3. **Saturation** — [`PageSparseDecode`] decode FLOPs and KV reads are
//!    constant in context length beyond the token budget; only the
//!    (cache-resident, FLOP-only) page-selection term keeps growing, two
//!    orders of magnitude below the bandwidth floor.
//! 4. **Determinism** — policies are pure functions of their configuration;
//!    the same seed reproduces the same run under any policy.
//!
//! [`CostModel`]: crate::roofline::CostModel

use crate::config::ModelConfig;
use serde::{Deserialize, Serialize};

/// The contract every attention-cost policy fulfils.
///
/// All methods take token counts as `f64` (matching the roofline's
/// arithmetic) and must be pure: the scheduling paths call them at every
/// iteration and rely on identical inputs producing identical outputs.
///
/// The two `*_flops` methods price the arithmetic side of the attention
/// roofline; the two `*_kv_read_tokens` methods price the HBM side — how
/// many tokens' worth of KV cache the kernel actually streams. A sparse
/// policy must cap **both**: long-context decode is bandwidth-bound, so
/// reducing FLOPs alone would change nothing.
pub trait AttentionCost {
    /// FLOPs of attention for `new_tokens` query positions attending over
    /// `total_context` cached positions (including themselves), causal.
    /// Used by full prefills (`new == total`), chunked-prefill chunks and
    /// the cached-context surcharge of prefix-cache suffix prefills.
    fn prefill_attention_flops(
        &self,
        model: &ModelConfig,
        new_tokens: f64,
        total_context: f64,
    ) -> f64;

    /// FLOPs of one decode step (a single new token) attending over
    /// `context_len` cached tokens.
    fn decode_attention_flops(&self, model: &ModelConfig, context_len: f64) -> f64;

    /// Tokens' worth of KV cache one decode step streams from HBM for a
    /// request with `context_len` cached tokens.
    fn decode_kv_read_tokens(&self, context_len: f64) -> f64;

    /// Tokens' worth of KV cache a prefill chunk of `chunk_tokens` streams
    /// from HBM while attending over `total_context` processed tokens
    /// (chunk included).
    fn chunk_kv_read_tokens(&self, chunk_tokens: f64, total_context: f64) -> f64;

    /// Short label for figure legends and bench output.
    fn label(&self) -> &'static str;
}

/// Dense causal attention over the full context — the paper's original
/// behaviour and the default policy.
///
/// Delegates to the exact arithmetic [`CostModel`] used before the policy
/// tier existed, so every consumer stays bit-for-bit on the pinned golden
/// digests.
///
/// [`CostModel`]: crate::roofline::CostModel
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dense;

impl AttentionCost for Dense {
    fn prefill_attention_flops(
        &self,
        model: &ModelConfig,
        new_tokens: f64,
        total_context: f64,
    ) -> f64 {
        model.attention_flops(new_tokens, total_context)
    }

    fn decode_attention_flops(&self, model: &ModelConfig, context_len: f64) -> f64 {
        model.attention_flops(1.0, context_len)
    }

    fn decode_kv_read_tokens(&self, context_len: f64) -> f64 {
        context_len
    }

    fn chunk_kv_read_tokens(&self, _chunk_tokens: f64, total_context: f64) -> f64 {
        total_context
    }

    fn label(&self) -> &'static str {
        "dense"
    }
}

/// LServe-style page-sparse streaming **decode**: every decode step attends
/// over an always-kept streaming sink prefix and recent window plus a fixed
/// budget of top-scored KV pages. Beyond the token budget, decode FLOPs and
/// KV reads are flat in context length. Prefill stays dense.
///
/// Page selection is priced as FLOPs only: each page is scored against the
/// query with two landmark key vectors (per-page min/max summaries). The
/// landmark tensors are two orders of magnitude smaller than the KV cache
/// and stay cache-resident, so they add no HBM KV-read bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageSparseDecode {
    /// Tokens per KV page (the selection granularity).
    pub page_tokens: usize,
    /// Top-scored pages the selector keeps per decode step.
    pub budget_pages: usize,
    /// Always-attended attention-sink prefix (streaming head), in tokens.
    pub sink_tokens: usize,
    /// Always-attended recent window (streaming tail), in tokens.
    pub recent_tokens: usize,
}

impl PageSparseDecode {
    /// LServe's evaluation shape: 64-token pages, a 4096-token page budget,
    /// plus a 128-token sink and 256-token recent window.
    pub fn lserve() -> Self {
        PageSparseDecode {
            page_tokens: 64,
            budget_pages: 64,
            sink_tokens: 128,
            recent_tokens: 256,
        }
    }

    /// Total decode attention budget in tokens: sink + recent window + the
    /// page budget. Decode cost saturates at this context length.
    pub fn token_budget(&self) -> f64 {
        (self.sink_tokens + self.recent_tokens + self.budget_pages * self.page_tokens) as f64
    }

    /// Context tokens one decode step actually attends over.
    fn effective_context(&self, context_len: f64) -> f64 {
        context_len.min(self.token_budget())
    }

    /// FLOPs of scoring every page of a `context_len`-token cache against
    /// one query: two landmark dot products of the hidden dimension per
    /// page per layer.
    fn selection_flops(&self, model: &ModelConfig, context_len: f64) -> f64 {
        let pages = (context_len / self.page_tokens as f64).ceil();
        model.num_layers as f64 * 4.0 * (2.0 * pages) * model.hidden_size as f64
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.page_tokens == 0 || self.budget_pages == 0 {
            return Err("page-sparse decode needs positive page size and budget".to_string());
        }
        Ok(())
    }
}

impl AttentionCost for PageSparseDecode {
    fn prefill_attention_flops(
        &self,
        model: &ModelConfig,
        new_tokens: f64,
        total_context: f64,
    ) -> f64 {
        // Prefill is dense under this policy; only decode is sparse.
        model.attention_flops(new_tokens, total_context)
    }

    fn decode_attention_flops(&self, model: &ModelConfig, context_len: f64) -> f64 {
        let dense = model.attention_flops(1.0, context_len);
        let sparse = model.attention_flops(1.0, self.effective_context(context_len))
            + self.selection_flops(model, context_len);
        // The kernel falls back to the dense path whenever the whole
        // context fits the budget, so sparsity never costs extra.
        dense.min(sparse)
    }

    fn decode_kv_read_tokens(&self, context_len: f64) -> f64 {
        self.effective_context(context_len)
    }

    fn chunk_kv_read_tokens(&self, _chunk_tokens: f64, total_context: f64) -> f64 {
        total_context
    }

    fn label(&self) -> &'static str {
        "page-sparse-decode"
    }
}

/// LServe §4 hierarchical-paging **prefill**: each query attends to at most
/// `budget_tokens` of context, skipping the pages the hierarchical selector
/// scores below the budget. Decode stays dense.
///
/// Selection is priced per (query block × context page) landmark scoring,
/// FLOPs only — the two-level page hierarchy keeps the score tensors
/// cache-resident. Chunked prefills additionally stop re-streaming the
/// whole processed prefix from HBM: each query block reads at most its
/// budget of selected pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchicalPrefill {
    /// Tokens per logical KV page at the prefill selection level.
    pub page_tokens: usize,
    /// Per-query attention budget during prefill, in context tokens.
    pub budget_tokens: usize,
}

impl HierarchicalPrefill {
    /// LServe's evaluation shape: 64-token logical pages and an 8192-token
    /// per-query prefill budget.
    pub fn lserve() -> Self {
        HierarchicalPrefill {
            page_tokens: 64,
            budget_tokens: 8192,
        }
    }

    /// Causally attended (query, key) pairs when every query's context is
    /// capped at the budget. Query `j` of `n` (1-based) attends over
    /// `min(base + j, budget)` tokens, where `base = total_context - n` is
    /// the pre-existing prefix. Closed form of the capped causal sum.
    fn capped_attended(&self, new_tokens: f64, total_context: f64) -> f64 {
        let b = self.budget_tokens as f64;
        let base = total_context - new_tokens;
        // Queries 1..=k stay under the budget; the remaining n-k are capped.
        let k = (b - base).clamp(0.0, new_tokens);
        k * base + 0.5 * k * (k + 1.0) + (new_tokens - k) * b
    }

    /// FLOPs of landmark-scoring every context page once per query block.
    fn selection_flops(&self, model: &ModelConfig, new_tokens: f64, total_context: f64) -> f64 {
        let pages = (total_context / self.page_tokens as f64).ceil();
        let blocks = (new_tokens / self.page_tokens as f64).ceil();
        model.num_layers as f64 * 4.0 * (2.0 * pages * blocks) * model.hidden_size as f64
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.page_tokens == 0 || self.budget_tokens == 0 {
            return Err("hierarchical prefill needs positive page size and budget".to_string());
        }
        Ok(())
    }
}

impl AttentionCost for HierarchicalPrefill {
    fn prefill_attention_flops(
        &self,
        model: &ModelConfig,
        new_tokens: f64,
        total_context: f64,
    ) -> f64 {
        let dense = model.attention_flops(new_tokens, total_context);
        let attended = self.capped_attended(new_tokens, total_context);
        let sparse = model.num_layers as f64 * 4.0 * attended * model.hidden_size as f64
            + self.selection_flops(model, new_tokens, total_context);
        // Fall back to dense when the context fits the budget.
        dense.min(sparse)
    }

    fn decode_attention_flops(&self, model: &ModelConfig, context_len: f64) -> f64 {
        model.attention_flops(1.0, context_len)
    }

    fn decode_kv_read_tokens(&self, context_len: f64) -> f64 {
        context_len
    }

    fn chunk_kv_read_tokens(&self, chunk_tokens: f64, total_context: f64) -> f64 {
        if chunk_tokens <= 0.0 {
            return total_context;
        }
        // Each query block streams at most its budget of selected pages;
        // never more than the dense read set.
        let blocks = (chunk_tokens / self.page_tokens as f64).ceil();
        total_context.min(blocks * self.budget_tokens as f64)
    }

    fn label(&self) -> &'static str {
        "hierarchical-prefill"
    }
}

/// The attention-cost policy carried by [`CostModel`]: a serialisable sum
/// type over the three implementations, delegating [`AttentionCost`] to the
/// selected one.
///
/// [`CostModel`]: crate::roofline::CostModel
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttentionCostPolicy {
    /// Dense causal attention (the default; pinned by the golden digests).
    #[default]
    Dense,
    /// Page-sparse streaming decode with a fixed token budget.
    PageSparseDecode(PageSparseDecode),
    /// Hierarchical prefill skipping pages below the selection budget.
    HierarchicalPrefill(HierarchicalPrefill),
}

impl AttentionCostPolicy {
    /// The LServe-shaped sparse-decode policy.
    pub fn page_sparse() -> Self {
        AttentionCostPolicy::PageSparseDecode(PageSparseDecode::lserve())
    }

    /// The LServe-shaped hierarchical-prefill policy.
    pub fn hierarchical() -> Self {
        AttentionCostPolicy::HierarchicalPrefill(HierarchicalPrefill::lserve())
    }

    /// The three policies the sparse-attention ablation compares.
    pub fn ablation_set() -> Vec<AttentionCostPolicy> {
        vec![
            AttentionCostPolicy::Dense,
            AttentionCostPolicy::page_sparse(),
            AttentionCostPolicy::hierarchical(),
        ]
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            AttentionCostPolicy::Dense => Ok(()),
            AttentionCostPolicy::PageSparseDecode(p) => p.validate(),
            AttentionCostPolicy::HierarchicalPrefill(p) => p.validate(),
        }
    }
}

impl AttentionCost for AttentionCostPolicy {
    fn prefill_attention_flops(
        &self,
        model: &ModelConfig,
        new_tokens: f64,
        total_context: f64,
    ) -> f64 {
        match self {
            AttentionCostPolicy::Dense => {
                Dense.prefill_attention_flops(model, new_tokens, total_context)
            }
            AttentionCostPolicy::PageSparseDecode(p) => {
                p.prefill_attention_flops(model, new_tokens, total_context)
            }
            AttentionCostPolicy::HierarchicalPrefill(p) => {
                p.prefill_attention_flops(model, new_tokens, total_context)
            }
        }
    }

    fn decode_attention_flops(&self, model: &ModelConfig, context_len: f64) -> f64 {
        match self {
            AttentionCostPolicy::Dense => Dense.decode_attention_flops(model, context_len),
            AttentionCostPolicy::PageSparseDecode(p) => {
                p.decode_attention_flops(model, context_len)
            }
            AttentionCostPolicy::HierarchicalPrefill(p) => {
                p.decode_attention_flops(model, context_len)
            }
        }
    }

    fn decode_kv_read_tokens(&self, context_len: f64) -> f64 {
        match self {
            AttentionCostPolicy::Dense => Dense.decode_kv_read_tokens(context_len),
            AttentionCostPolicy::PageSparseDecode(p) => p.decode_kv_read_tokens(context_len),
            AttentionCostPolicy::HierarchicalPrefill(p) => p.decode_kv_read_tokens(context_len),
        }
    }

    fn chunk_kv_read_tokens(&self, chunk_tokens: f64, total_context: f64) -> f64 {
        match self {
            AttentionCostPolicy::Dense => Dense.chunk_kv_read_tokens(chunk_tokens, total_context),
            AttentionCostPolicy::PageSparseDecode(p) => {
                p.chunk_kv_read_tokens(chunk_tokens, total_context)
            }
            AttentionCostPolicy::HierarchicalPrefill(p) => {
                p.chunk_kv_read_tokens(chunk_tokens, total_context)
            }
        }
    }

    fn label(&self) -> &'static str {
        match self {
            AttentionCostPolicy::Dense => Dense.label(),
            AttentionCostPolicy::PageSparseDecode(p) => p.label(),
            AttentionCostPolicy::HierarchicalPrefill(p) => p.label(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ModelConfig {
        ModelConfig::lwm_1m_text()
    }

    #[test]
    fn dense_matches_raw_attention_flops() {
        let m = model();
        for (n, c) in [(1.0, 10_000.0), (2_000.0, 50_000.0), (100.0, 100.0)] {
            assert_eq!(
                Dense.prefill_attention_flops(&m, n, c),
                m.attention_flops(n, c)
            );
        }
        assert_eq!(
            Dense.decode_attention_flops(&m, 30_000.0),
            m.attention_flops(1.0, 30_000.0)
        );
        assert_eq!(Dense.decode_kv_read_tokens(12_345.0), 12_345.0);
        assert_eq!(Dense.chunk_kv_read_tokens(2_000.0, 52_000.0), 52_000.0);
    }

    #[test]
    fn page_sparse_decode_saturates_at_budget() {
        let m = model();
        let p = PageSparseDecode::lserve();
        let budget = p.token_budget();
        // Below the budget: identical to dense.
        assert_eq!(
            p.decode_attention_flops(&m, 1_000.0),
            m.attention_flops(1.0, 1_000.0)
        );
        assert_eq!(p.decode_kv_read_tokens(1_000.0), 1_000.0);
        // Beyond the budget: KV reads flat, FLOPs grow only by selection.
        assert_eq!(p.decode_kv_read_tokens(100_000.0), budget);
        assert_eq!(p.decode_kv_read_tokens(1_000_000.0), budget);
        let f100k = p.decode_attention_flops(&m, 100_000.0);
        let f1m = p.decode_attention_flops(&m, 1_000_000.0);
        let dense1m = m.attention_flops(1.0, 1_000_000.0);
        assert!(f1m < dense1m / 10.0, "sparse {f1m} vs dense {dense1m}");
        // Selection slope is 2/page_tokens of the dense slope.
        assert!(f1m / f100k < 5.0, "selection term grew too fast");
    }

    #[test]
    fn page_sparse_never_exceeds_dense() {
        let m = model();
        let p = PageSparseDecode::lserve();
        for c in [1.0, 100.0, 4_479.0, 4_480.0, 4_481.0, 50_000.0, 1e6] {
            assert!(
                p.decode_attention_flops(&m, c) <= m.attention_flops(1.0, c),
                "flops exceed dense at context {c}"
            );
            assert!(p.decode_kv_read_tokens(c) <= c);
        }
    }

    #[test]
    fn hierarchical_prefill_caps_attended_pairs() {
        let m = model();
        let h = HierarchicalPrefill::lserve();
        // Short prefill: under the budget, exactly dense.
        assert_eq!(
            h.prefill_attention_flops(&m, 4_000.0, 4_000.0),
            m.attention_flops(4_000.0, 4_000.0)
        );
        // Long prefill: far below dense (the budget caps each query).
        let dense = m.attention_flops(500_000.0, 500_000.0);
        let sparse = h.prefill_attention_flops(&m, 500_000.0, 500_000.0);
        assert!(
            sparse < dense / 10.0,
            "hierarchical {sparse} vs dense {dense}"
        );
        // Decode stays dense.
        assert_eq!(
            h.decode_attention_flops(&m, 200_000.0),
            m.attention_flops(1.0, 200_000.0)
        );
    }

    #[test]
    fn hierarchical_capped_sum_matches_dense_when_under_budget() {
        let h = HierarchicalPrefill {
            page_tokens: 64,
            budget_tokens: 1 << 30,
        };
        // With an unreachable budget the capped closed form must equal the
        // dense attended count exactly.
        let n = 1_234.0;
        let c = 9_876.0;
        let dense_attended = n * (c - n) + 0.5 * n * (n + 1.0);
        assert_eq!(h.capped_attended(n, c), dense_attended);
    }

    #[test]
    fn hierarchical_chunk_reads_less_kv_over_long_prefixes() {
        let h = HierarchicalPrefill::lserve();
        // 2000-token chunk over a 500K prefix: 32 blocks x 8192 budget.
        let reads = h.chunk_kv_read_tokens(2_000.0, 502_000.0);
        assert!(
            reads < 502_000.0,
            "chunk should not re-read the full prefix"
        );
        assert_eq!(reads, (2_000.0f64 / 64.0).ceil() * 8_192.0);
        // Monolithic prefill reads everything (blocks x budget > context).
        assert_eq!(h.chunk_kv_read_tokens(500_000.0, 500_000.0), 500_000.0);
    }

    #[test]
    fn policy_enum_delegates_and_labels() {
        let m = model();
        let sparse = AttentionCostPolicy::page_sparse();
        assert_eq!(sparse.label(), "page-sparse-decode");
        assert_eq!(
            sparse.decode_kv_read_tokens(1e6),
            PageSparseDecode::lserve().token_budget()
        );
        assert_eq!(AttentionCostPolicy::default().label(), "dense");
        assert_eq!(
            AttentionCostPolicy::hierarchical().label(),
            "hierarchical-prefill"
        );
        assert_eq!(
            AttentionCostPolicy::Dense.decode_attention_flops(&m, 5_000.0),
            m.attention_flops(1.0, 5_000.0)
        );
        assert_eq!(AttentionCostPolicy::ablation_set().len(), 3);
    }

    #[test]
    fn policies_serialise_roundtrip() {
        for p in AttentionCostPolicy::ablation_set() {
            let json = serde_json::to_string(&p).expect("serialise");
            let back: AttentionCostPolicy = serde_json::from_str(&json).expect("deserialise");
            assert_eq!(p, back);
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(AttentionCostPolicy::Dense.validate().is_ok());
        assert!(AttentionCostPolicy::page_sparse().validate().is_ok());
        let bad = AttentionCostPolicy::PageSparseDecode(PageSparseDecode {
            page_tokens: 0,
            ..PageSparseDecode::lserve()
        });
        assert!(bad.validate().is_err());
        let bad = AttentionCostPolicy::HierarchicalPrefill(HierarchicalPrefill {
            budget_tokens: 0,
            ..HierarchicalPrefill::lserve()
        });
        assert!(bad.validate().is_err());
    }
}
