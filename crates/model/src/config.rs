//! Transformer model configurations.
//!
//! The evaluation model of the paper is LWM-1M-Text, which shares the
//! Llama-2-7B architecture (32 layers, 4096 hidden, 32 heads, multi-head
//! attention) but supports a 1M-token context window. Only the
//! architectural parameters matter for serving decisions: they determine
//! parameter count (weight bytes), per-token KV-cache bytes, and the FLOP
//! and byte counts that the roofline cost model consumes.
//!
//! Note that the architecture says nothing about *how much* of the context
//! attention actually touches per token — that is the attention-cost
//! policy's decision ([`crate::attention`]): dense attention reads all of
//! it, the sparse policies cap it at a budget. This module only supplies
//! the raw dense FLOP counts the policies build on.

use serde::{Deserialize, Serialize};

/// Architectural description of a decoder-only transformer.
///
/// # Examples
///
/// ```
/// use loong_model::config::ModelConfig;
///
/// let m = ModelConfig::lwm_1m_text();
/// // The paper's example: the KV cache of a 1M-token request is ~488 GiB.
/// let gib = m.kv_bytes_per_token() * 1_000_000.0 / (1024.0 * 1024.0 * 1024.0);
/// assert!((gib - 488.0).abs() < 2.0, "got {gib} GiB");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable model name.
    pub name: String,
    /// Number of transformer layers.
    pub num_layers: usize,
    /// Hidden (embedding) dimension.
    pub hidden_size: usize,
    /// Number of attention (query) heads.
    pub num_heads: usize,
    /// Number of key-value heads (equal to `num_heads` for MHA, smaller for
    /// GQA, 1 for MQA).
    pub num_kv_heads: usize,
    /// FFN intermediate dimension.
    pub intermediate_size: usize,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Bytes per parameter / activation element (2 for FP16/BF16).
    pub dtype_bytes: usize,
    /// Maximum context window supported by the model, in tokens.
    pub max_context_len: usize,
}

impl ModelConfig {
    /// LWM-1M-Text: Llama-2-7B architecture with a 1M-token context window.
    /// This is the model used throughout the paper's evaluation.
    pub fn lwm_1m_text() -> Self {
        ModelConfig {
            name: "LWM-1M-Text (Llama-2-7B)".to_string(),
            num_layers: 32,
            hidden_size: 4096,
            num_heads: 32,
            num_kv_heads: 32,
            intermediate_size: 11008,
            vocab_size: 32000,
            dtype_bytes: 2,
            max_context_len: 1_048_576,
        }
    }

    /// Vanilla Llama-2-7B with its native 4K context window.
    pub fn llama2_7b() -> Self {
        ModelConfig {
            max_context_len: 4096,
            name: "Llama-2-7B".to_string(),
            ..Self::lwm_1m_text()
        }
    }

    /// Llama-2-13B, used for scale sensitivity checks beyond the paper.
    pub fn llama2_13b() -> Self {
        ModelConfig {
            name: "Llama-2-13B".to_string(),
            num_layers: 40,
            hidden_size: 5120,
            num_heads: 40,
            num_kv_heads: 40,
            intermediate_size: 13824,
            vocab_size: 32000,
            dtype_bytes: 2,
            max_context_len: 4096,
        }
    }

    /// A Llama-3-8B-like GQA configuration (8 KV heads), exercising the
    /// GQA-compatibility the paper claims for its mechanisms.
    pub fn llama3_8b_gqa() -> Self {
        ModelConfig {
            name: "Llama-3-8B (GQA)".to_string(),
            num_layers: 32,
            hidden_size: 4096,
            num_heads: 32,
            num_kv_heads: 8,
            intermediate_size: 14336,
            vocab_size: 128256,
            dtype_bytes: 2,
            max_context_len: 131_072,
        }
    }

    /// Dimension of each attention head.
    pub fn head_dim(&self) -> usize {
        self.hidden_size / self.num_heads
    }

    /// Approximate total parameter count of the decoder stack plus
    /// embeddings.
    ///
    /// Per layer: Q/K/V/O projections (with GQA-reduced K/V), gated FFN
    /// (three matrices). Plus input/output embeddings.
    pub fn param_count(&self) -> f64 {
        let h = self.hidden_size as f64;
        let kv_h = (self.num_kv_heads * self.head_dim()) as f64;
        let i = self.intermediate_size as f64;
        let per_layer = h * h            // Q projection
            + 2.0 * h * kv_h             // K and V projections
            + h * h                      // O projection
            + 3.0 * h * i; // gate, up, down FFN matrices
        let embeddings = 2.0 * self.vocab_size as f64 * h;
        self.num_layers as f64 * per_layer + embeddings
    }

    /// Total model weight bytes (unsharded).
    pub fn weight_bytes(&self) -> f64 {
        self.param_count() * self.dtype_bytes as f64
    }

    /// Weight bytes resident on each GPU under `tp`-way tensor parallelism.
    pub fn weight_bytes_per_gpu(&self, tp: usize) -> f64 {
        assert!(tp >= 1, "tensor parallel degree must be >= 1");
        self.weight_bytes() / tp as f64
    }

    /// Key-value cache bytes per token across the whole model (all layers,
    /// K and V).
    pub fn kv_bytes_per_token(&self) -> f64 {
        (2 * self.num_layers * self.num_kv_heads * self.head_dim() * self.dtype_bytes) as f64
    }

    /// Key-value cache bytes per token stored on each GPU when the KV heads
    /// are sharded `tp` ways within an instance.
    pub fn kv_bytes_per_token_per_gpu(&self, tp: usize) -> f64 {
        assert!(tp >= 1, "tensor parallel degree must be >= 1");
        // KV heads cannot be split below one head per GPU; clamp so MQA/GQA
        // models replicate KV on extra ranks exactly like real systems do.
        let effective_shards = tp.min(self.num_kv_heads) as f64;
        self.kv_bytes_per_token() / effective_shards
    }

    /// FLOPs of the dense (non-attention) computation for one token: every
    /// parameter in the projections and FFN participates in one
    /// multiply-accumulate.
    pub fn linear_flops_per_token(&self) -> f64 {
        let h = self.hidden_size as f64;
        let kv_h = (self.num_kv_heads * self.head_dim()) as f64;
        let i = self.intermediate_size as f64;
        let per_layer = 2.0 * (h * h + 2.0 * h * kv_h + h * h + 3.0 * h * i);
        self.num_layers as f64 * per_layer + 2.0 * self.vocab_size as f64 * h
    }

    /// FLOPs of causal attention (QKᵀ and AV) for a request whose query
    /// tokens span `new_tokens` positions attending to `total_context`
    /// cached positions (including themselves).
    ///
    /// For a full prefill, `new_tokens == total_context == L` and the causal
    /// mask halves the work: `2 · L² · hidden` per layer. For a decode step
    /// `new_tokens == 1` and the cost is linear in the context length.
    ///
    /// Crate-private on purpose: this is the **dense** count, the raw
    /// material of [`crate::attention`]. Everything outside the crate must
    /// price attention through an
    /// [`AttentionCostPolicy`](crate::attention::AttentionCostPolicy) so no
    /// caller can silently bypass the configured sparsity.
    pub(crate) fn attention_flops(&self, new_tokens: f64, total_context: f64) -> f64 {
        assert!(new_tokens >= 0.0 && total_context >= 0.0);
        assert!(
            total_context >= new_tokens,
            "context must include the new tokens"
        );
        let h = self.hidden_size as f64;
        // Each new token attends to (total_context - new_tokens) prior
        // positions plus, on average, half of the new tokens (causality).
        let attended =
            new_tokens * (total_context - new_tokens) + 0.5 * new_tokens * (new_tokens + 1.0);
        // QK^T and AV each cost 2 * attended * hidden FLOPs per layer.
        self.num_layers as f64 * 4.0 * attended * h
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_layers == 0 || self.hidden_size == 0 || self.num_heads == 0 {
            return Err(format!(
                "{}: layers/hidden/heads must be positive",
                self.name
            ));
        }
        if !self.hidden_size.is_multiple_of(self.num_heads) {
            return Err(format!(
                "{}: hidden_size must be divisible by num_heads",
                self.name
            ));
        }
        if self.num_kv_heads == 0 || !self.num_heads.is_multiple_of(self.num_kv_heads) {
            return Err(format!(
                "{}: num_heads must be a multiple of num_kv_heads",
                self.name
            ));
        }
        if self.dtype_bytes == 0 {
            return Err(format!("{}: dtype_bytes must be positive", self.name));
        }
        if self.max_context_len == 0 {
            return Err(format!("{}: max_context_len must be positive", self.name));
        }
        Ok(())
    }
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig::lwm_1m_text()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lwm_matches_paper_kv_footprint() {
        let m = ModelConfig::lwm_1m_text();
        // 2 * 32 layers * 4096 * 2 bytes = 512 KiB per token.
        assert_eq!(m.kv_bytes_per_token(), 524_288.0);
        // 1M tokens => ~488 GiB, the number quoted in the paper's intro.
        let gib = m.kv_bytes_per_token() * 1e6 / (1024.0 * 1024.0 * 1024.0);
        assert!((gib - 488.3).abs() < 1.0, "got {gib}");
    }

    #[test]
    fn param_count_close_to_7b() {
        let m = ModelConfig::llama2_7b();
        let p = m.param_count();
        assert!(p > 6.3e9 && p < 7.1e9, "param count {p} not ~6.7B");
    }

    #[test]
    fn param_count_close_to_13b() {
        let m = ModelConfig::llama2_13b();
        let p = m.param_count();
        assert!(p > 12.0e9 && p < 13.5e9, "param count {p} not ~13B");
    }

    #[test]
    fn gqa_reduces_kv_footprint() {
        let mha = ModelConfig::lwm_1m_text();
        let gqa = ModelConfig::llama3_8b_gqa();
        assert!(gqa.kv_bytes_per_token() < mha.kv_bytes_per_token() / 2.0);
    }

    #[test]
    fn kv_sharding_clamps_to_kv_heads() {
        let gqa = ModelConfig::llama3_8b_gqa();
        // With only 8 KV heads, sharding 16 ways cannot reduce below 1/8th.
        assert_eq!(
            gqa.kv_bytes_per_token_per_gpu(16),
            gqa.kv_bytes_per_token() / 8.0
        );
    }

    #[test]
    fn attention_flops_quadratic_for_prefill() {
        let m = ModelConfig::lwm_1m_text();
        let f1 = m.attention_flops(1_000.0, 1_000.0);
        let f10 = m.attention_flops(10_000.0, 10_000.0);
        let ratio = f10 / f1;
        assert!(ratio > 90.0 && ratio < 110.0, "expected ~100x, got {ratio}");
    }

    #[test]
    fn attention_flops_linear_for_decode() {
        let m = ModelConfig::lwm_1m_text();
        let f1 = m.attention_flops(1.0, 10_000.0);
        let f2 = m.attention_flops(1.0, 20_000.0);
        let ratio = f2 / f1;
        assert!((ratio - 2.0).abs() < 0.01, "expected ~2x, got {ratio}");
    }

    #[test]
    fn linear_flops_roughly_twice_params() {
        let m = ModelConfig::llama2_7b();
        let ratio = m.linear_flops_per_token() / m.param_count();
        assert!(ratio > 1.8 && ratio < 2.2, "ratio {ratio}");
    }

    #[test]
    fn all_presets_validate() {
        for m in [
            ModelConfig::lwm_1m_text(),
            ModelConfig::llama2_7b(),
            ModelConfig::llama2_13b(),
            ModelConfig::llama3_8b_gqa(),
        ] {
            assert!(m.validate().is_ok(), "{} failed validation", m.name);
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut m = ModelConfig::llama2_7b();
        m.num_kv_heads = 5;
        assert!(m.validate().is_err());
        let mut m = ModelConfig::llama2_7b();
        m.hidden_size = 4097;
        assert!(m.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "context must include")]
    fn attention_flops_rejects_inconsistent_args() {
        let m = ModelConfig::llama2_7b();
        let _ = m.attention_flops(100.0, 50.0);
    }
}
