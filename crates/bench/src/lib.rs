//! Shared helpers for the figure-reproduction benchmark harness.
//!
//! Every bench target in this crate regenerates one table or figure of the
//! LoongServe paper: it prints a markdown/CSV rendition to stdout (captured
//! into `bench_output.txt` by the top-level instructions) and also writes
//! the CSV under `target/figures/` for plotting.

use std::fs;
use std::path::PathBuf;

/// Directory where benches drop their CSV outputs.
pub fn figures_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("target")
        .join("figures");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Writes a figure's CSV payload, returning the path it was written to.
pub fn write_figure_csv(name: &str, contents: &str) -> PathBuf {
    let path = figures_dir().join(name);
    if let Err(err) = fs::write(&path, contents) {
        eprintln!("warning: could not write {}: {err}", path.display());
    }
    path
}

/// Prints a section header so figure outputs are easy to locate in the
/// captured bench log.
pub fn banner(title: &str) {
    println!("\n==================================================================");
    println!("{title}");
    println!("==================================================================");
}

/// Normalises a series so its maximum is 1.0, matching the paper's
/// "normalised iteration time" axes.
pub fn normalize(values: &[f64]) -> Vec<f64> {
    let max = values.iter().copied().fold(0.0f64, f64::max);
    if max <= 0.0 {
        return values.to_vec();
    }
    values.iter().map(|v| v / max).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_scales_to_unit_max() {
        let n = normalize(&[1.0, 2.0, 4.0]);
        assert_eq!(n, vec![0.25, 0.5, 1.0]);
        assert_eq!(normalize(&[]), Vec::<f64>::new());
        assert_eq!(normalize(&[0.0]), vec![0.0]);
    }

    #[test]
    fn figures_dir_is_creatable() {
        let dir = figures_dir();
        assert!(dir.ends_with("figures"));
    }
}
