//! Figure 3: fixed sequence parallelism + tensor parallelism vs. pure tensor
//! parallelism, for both phases, across batch-size/length combinations.
//!
//! The paper's point: adding SP to TP costs nothing and often helps for long
//! sequences — the prerequisite for building *elastic* SP on top of it.

use loong_bench::{banner, write_figure_csv};
use loong_cluster::gpu::LinkSpec;
use loong_model::config::ModelConfig;
use loong_model::roofline::{CostModel, ParallelConfig};

fn main() {
    let cm = CostModel::builder(ModelConfig::lwm_1m_text()).build();
    let link = LinkSpec::nvlink_a800();
    // All three strategies use the same eight GPUs.
    let strategies = [
        ("SP=1,TP=8", ParallelConfig::new(8, 1)),
        ("SP=2,TP=4", ParallelConfig::new(4, 2)),
        ("SP=4,TP=2", ParallelConfig::new(2, 4)),
    ];
    // The paper's batch-size / per-request-length pairs.
    let cases: Vec<(usize, u64)> = vec![
        (512, 1_000),
        (128, 5_000),
        (64, 10_000),
        (16, 50_000),
        (4, 100_000),
        (1, 500_000),
    ];

    banner("Figure 3 — fixed SPxTP vs pure TP (8 GPUs)");
    let mut csv = String::from("phase,batch_size,len,strategy,iteration_time_s\n");

    println!("\nprefill phase (iteration time in seconds):");
    println!(
        "{:>6} {:>9} | {:>12} {:>12} {:>12} | best",
        "BS", "Len", "SP1TP8", "SP2TP4", "SP4TP2"
    );
    for &(bs, len) in &cases {
        let lens = vec![len; bs];
        let times: Vec<f64> = strategies
            .iter()
            .map(|(_, p)| cm.prefill_cost(&lens, *p, link).total())
            .collect();
        for (i, (name, _)) in strategies.iter().enumerate() {
            csv.push_str(&format!("prefill,{bs},{len},{name},{:.9}\n", times[i]));
        }
        let best = strategies[times
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0)]
        .0;
        println!(
            "{:>6} {:>9} | {:>12.4} {:>12.4} {:>12.4} | {}",
            bs, len, times[0], times[1], times[2], best
        );
    }

    println!("\ndecode phase (iteration time in seconds):");
    println!(
        "{:>6} {:>9} | {:>12} {:>12} {:>12} | best",
        "BS", "Len", "SP1TP8", "SP2TP4", "SP4TP2"
    );
    for &(bs, len) in &cases {
        let ctx = vec![len; bs];
        let times: Vec<f64> = strategies
            .iter()
            .map(|(_, p)| cm.decode_cost(&ctx, *p, p.sp, link).total())
            .collect();
        for (i, (name, _)) in strategies.iter().enumerate() {
            csv.push_str(&format!("decode,{bs},{len},{name},{:.9}\n", times[i]));
        }
        let best = strategies[times
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0)]
        .0;
        println!(
            "{:>6} {:>9} | {:>12.5} {:>12.5} {:>12.5} | {}",
            bs, len, times[0], times[1], times[2], best
        );
    }

    let path = write_figure_csv("fig3_sp_vs_tp.csv", &csv);
    println!("\nCSV written to {}", path.display());
}
