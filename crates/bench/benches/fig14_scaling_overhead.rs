//! Figure 14: overhead of the elastic scaling mechanisms.
//!
//! (a) Prefill iterations with vs. without proactive scale-down folded in —
//!     the overhead must stay negligible (<2% in the paper).
//! (b) Decode iterations with 1 / 2 / 4 sequence-parallel masters — the
//!     multi-master mechanism should roughly halve latency at large batch
//!     sizes and cost <10% at batch size 1.

use loong_bench::{banner, write_figure_csv};
use loong_cluster::gpu::LinkSpec;
use loong_model::config::ModelConfig;
use loong_model::roofline::{CostModel, ParallelConfig};

fn main() {
    let cm = CostModel::builder(ModelConfig::lwm_1m_text()).build();
    let link = LinkSpec::nvlink_a800();
    let p = ParallelConfig::new(2, 4);
    // The paper's batch-size / prompt-length pairs.
    let cases: Vec<(usize, u64)> = vec![
        (1024, 10),
        (256, 100),
        (64, 1_000),
        (16, 10_000),
        (4, 50_000),
        (2, 100_000),
        (1, 200_000),
    ];

    banner("Figure 14a — prefill with vs without proactive scale-down (SP4TP2)");
    let mut csv = String::from("panel,batch_size,len,variant,iteration_time_s\n");
    println!(
        "{:>6} {:>9} | {:>14} {:>14} | overhead",
        "BS", "Len", "w/o scale-down", "w/ scale-down"
    );
    for &(bs, len) in &cases {
        let lens = vec![len; bs];
        let base = cm.prefill_cost(&lens, p, link).total();
        let total_tokens: u64 = lens.iter().sum();
        let with = base + cm.proactive_scale_down_overhead(total_tokens, p);
        let overhead = (with - base) / base * 100.0;
        csv.push_str(&format!("a,{bs},{len},without,{base:.9}\n"));
        csv.push_str(&format!("a,{bs},{len},with,{with:.9}\n"));
        println!(
            "{:>6} {:>9} | {:>14.4} {:>14.4} | {:>6.2}%",
            bs, len, base, with, overhead
        );
        assert!(overhead < 2.0, "proactive scale-down overhead exceeded 2%");
    }

    banner("Figure 14b — decode with 1 / 2 / 4 SP masters (SP4TP2)");
    println!(
        "{:>6} {:>9} | {:>12} {:>12} {:>12} | 1->4 speedup",
        "BS", "Len", "1 master", "2 masters", "4 masters"
    );
    for &(bs, len) in &cases {
        let ctx = vec![len; bs];
        let t1 = cm.decode_cost(&ctx, p, 1, link).total();
        let t2 = cm.decode_cost(&ctx, p, 2.min(bs.max(1)), link).total();
        let t4 = cm.decode_cost(&ctx, p, 4.min(bs.max(1)), link).total();
        csv.push_str(&format!("b,{bs},{len},1master,{t1:.9}\n"));
        csv.push_str(&format!("b,{bs},{len},2masters,{t2:.9}\n"));
        csv.push_str(&format!("b,{bs},{len},4masters,{t4:.9}\n"));
        println!(
            "{:>6} {:>9} | {:>12.5} {:>12.5} {:>12.5} | {:>6.2}x",
            bs,
            len,
            t1,
            t2,
            t4,
            t1 / t4
        );
    }

    let path = write_figure_csv("fig14_scaling_overhead.csv", &csv);
    println!("\nCSV written to {}", path.display());
}
