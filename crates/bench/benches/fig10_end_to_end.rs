//! Figure 10 / §7.2: end-to-end comparison of LoongServe against vLLM,
//! DeepSpeed-MII (Dynamic SplitFuse), LightLLM w/ SplitFuse and DistServe on
//! the four workloads (ShareGPT, L-Eval, LV-Eval, Mixed), sweeping the
//! offered request rate and reporting normalised per-token / input / output
//! latency plus the headline throughput-improvement factors.

use loong_bench::{banner, write_figure_csv};
use loongserve::prelude::*;
use loongserve::report;

fn main() {
    let slo = SloSpec::default_for_lwm();
    let mut all_csv = String::new();

    for dataset in DatasetKind::all() {
        banner(&format!(
            "Figure 10 — {} (8 GPUs, single node)",
            dataset.name()
        ));
        // Sweep a subset of the paper's rate range, scaled to keep the whole
        // harness runnable in minutes.
        let rates: Vec<f64> = dataset.figure10_rates().into_iter().step_by(2).collect();
        // Short-request workloads need longer traces before queueing effects
        // appear; long-context workloads are already expensive per request.
        let requests_per_run = if dataset == DatasetKind::ShareGpt {
            240
        } else {
            60
        };
        let config = SweepConfig {
            workload: WorkloadSpec::Dataset(dataset),
            rates,
            requests_per_run,
            slo,
            seed: 10,
            parallel: true,
        };
        // DeepSpeed-MII only appears in the ShareGPT row (it fails on >32K
        // prompts in the paper; we mirror the omission).
        let systems: Vec<SystemKind> = SystemKind::figure10_systems()
            .into_iter()
            .filter(|s| *s != SystemKind::DeepSpeedMii || dataset == DatasetKind::ShareGpt)
            .collect();
        let results = compare_systems(&systems, &config, SystemUnderTest::paper_single_node);

        println!("\n{}", report::sweep_markdown(&results));
        println!("{}", report::goodput_markdown(&results));
        for baseline in [
            "vLLM (TP=8)",
            "LightLLM w/ SplitFuse",
            "DeepSpeed-MII (Dynamic SplitFuse)",
            "DistServe (Prefill-Decoding Disaggregation)",
        ] {
            if let Some(x) = report::throughput_improvement(&results, "LoongServe", baseline) {
                println!("LoongServe vs {baseline}: {x:.2}x sustained token throughput");
            }
        }
        all_csv.push_str(&report::sweep_csv(&results));
    }

    let path = write_figure_csv("fig10_end_to_end.csv", &all_csv);
    println!("\nCSV written to {}", path.display());
}
