//! Sparse-attention ablation: the pluggable attention-cost policy tier.
//!
//! Three parts, all under the same three policies (`dense`,
//! `page-sparse-decode`, `hierarchical-prefill`):
//!
//! 1. **Decode cost vs context** (pure cost model, SP=4 TP=2): shows the
//!    page-sparse decode cost going *flat* beyond the token budget while
//!    dense keeps growing linearly with the KV read.
//! 2. **ESP vs TP** (Figure-3 shapes): the fixed SPxTP strategies on the
//!    paper's long-sequence cases, per policy — where elastic scale-up
//!    stops paying once decode is sublinear in context.
//! 3. **Goodput ablation** (full engine, and a 2-replica fleet in full
//!    mode): LoongServe on the Mixed long-context workload under each
//!    policy, plus a dense vLLM baseline in full mode.
//!
//! `--smoke` runs the reduced configuration CI uses and emits one
//! BENCH_SMOKE_JSON line gated against BENCH_sparse.json.

use loong_bench::{banner, write_figure_csv};
use loong_cluster::gpu::LinkSpec;
use loong_model::attention::AttentionCostPolicy;
use loong_model::config::ModelConfig;
use loong_model::roofline::{CostModel, ParallelConfig};
use loongserve::prelude::*;

fn policy_tag(policy: &AttentionCostPolicy) -> &'static str {
    match policy {
        AttentionCostPolicy::Dense => "dense",
        AttentionCostPolicy::PageSparseDecode(_) => "page_sparse",
        AttentionCostPolicy::HierarchicalPrefill(_) => "hierarchical",
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner(if smoke {
        "Sparse-attention ablation (smoke)"
    } else {
        "Sparse-attention ablation — attention-cost policies"
    });

    let policies = AttentionCostPolicy::ablation_set();
    let link = LinkSpec::nvlink_a800();
    let decode_parallel = ParallelConfig::new(2, 4); // the paper's SP=4, TP=2 node
    let mut csv = String::from("part,policy,case,value\n");

    // ---- Part 1: decode iteration cost vs context length -------------------
    let contexts: [u64; 5] = [4_096, 16_384, 65_536, 262_144, 1_048_576];
    let batch = 8usize;
    println!("\ndecode iteration time (s), batch of {batch}, SP=4 TP=2:");
    println!(
        "{:>10} | {:>12} {:>12} {:>12}",
        "context", "dense", "page-sparse", "hier-prefill"
    );
    let decode_cost = |policy: &AttentionCostPolicy, ctx: u64| -> f64 {
        let cm = CostModel::builder(ModelConfig::lwm_1m_text())
            .attention(*policy)
            .build();
        let lens = vec![ctx; batch];
        cm.decode_cost(&lens, decode_parallel, decode_parallel.sp, link)
            .total()
    };
    let mut curve = vec![Vec::new(); policies.len()];
    for &ctx in &contexts {
        let row: Vec<f64> = policies.iter().map(|p| decode_cost(p, ctx)).collect();
        for (i, policy) in policies.iter().enumerate() {
            csv.push_str(&format!(
                "decode_curve,{},{ctx},{:.9}\n",
                policy_tag(policy),
                row[i]
            ));
            curve[i].push(row[i]);
        }
        println!(
            "{:>10} | {:>12.6} {:>12.6} {:>12.6}",
            ctx, row[0], row[1], row[2]
        );
    }
    // Flatness: page-sparse decode cost at 1M vs 64K context (both far past
    // the 4480-token budget) — identical up to float noise, ratio ~1.0.
    let flat_ratio = curve[1][4] / curve[1][2];
    let speedup_1m = curve[0][4] / curve[1][4];
    println!(
        "\npage-sparse flatness: cost(1M)/cost(64K) = {flat_ratio:.6} \
         (dense grows {:.2}x over the same span)",
        curve[0][4] / curve[0][2]
    );
    println!("page-sparse decode speedup at 1M context: {speedup_1m:.2}x vs dense");

    // ---- Part 2: ESP vs TP under each policy -------------------------------
    let strategies = [
        ("SP=1,TP=8", ParallelConfig::new(8, 1)),
        ("SP=2,TP=4", ParallelConfig::new(4, 2)),
        ("SP=4,TP=2", ParallelConfig::new(2, 4)),
    ];
    let prefill_cases: [(usize, u64); 3] = [(16, 50_000), (4, 100_000), (1, 500_000)];
    let decode_cases: [(usize, u64); 3] = [(64, 10_000), (16, 50_000), (4, 100_000)];
    let mut esp_prefill_adv = Vec::new();
    for policy in &policies {
        let cm = CostModel::builder(ModelConfig::lwm_1m_text())
            .attention(*policy)
            .build();
        println!("\nESP vs TP under policy `{}`:", policy.label());
        println!(
            "{:>8} {:>6} {:>9} | {:>12} {:>12} {:>12} | best",
            "phase", "BS", "Len", "SP1TP8", "SP2TP4", "SP4TP2"
        );
        for &(bs, len) in &prefill_cases {
            let lens = vec![len; bs];
            let t: Vec<f64> = strategies
                .iter()
                .map(|(_, p)| cm.prefill_cost(&lens, *p, link).total())
                .collect();
            let best = strategies[argmin(&t)].0;
            println!(
                "{:>8} {:>6} {:>9} | {:>12.4} {:>12.4} {:>12.4} | {best}",
                "prefill", bs, len, t[0], t[1], t[2]
            );
            for (i, (name, _)) in strategies.iter().enumerate() {
                csv.push_str(&format!(
                    "esp_vs_tp_prefill,{},{bs}x{len}@{name},{:.9}\n",
                    policy_tag(policy),
                    t[i]
                ));
            }
            if bs == 1 && len == 500_000 {
                esp_prefill_adv.push(t[0] / t[2]);
            }
        }
        for &(bs, ctx) in &decode_cases {
            let lens = vec![ctx; bs];
            let t: Vec<f64> = strategies
                .iter()
                .map(|(_, p)| cm.decode_cost(&lens, *p, p.sp, link).total())
                .collect();
            let best = strategies[argmin(&t)].0;
            println!(
                "{:>8} {:>6} {:>9} | {:>12.5} {:>12.5} {:>12.5} | {best}",
                "decode", bs, ctx, t[0], t[1], t[2]
            );
            for (i, (name, _)) in strategies.iter().enumerate() {
                csv.push_str(&format!(
                    "esp_vs_tp_decode,{},{bs}x{ctx}@{name},{:.9}\n",
                    policy_tag(policy),
                    t[i]
                ));
            }
        }
    }
    println!(
        "\nESP prefill advantage (SP1TP8 / SP4TP2 at 1x500K): dense {:.4}, \
         page-sparse {:.4}, hierarchical {:.4}",
        esp_prefill_adv[0], esp_prefill_adv[1], esp_prefill_adv[2]
    );

    // ---- Part 3: engine (and fleet) goodput per policy ---------------------
    let count = if smoke { 32 } else { 96 };
    let rate = 0.8;
    let trace = WorkloadSpec::Dataset(DatasetKind::Mixed).generate(rate, count, 2025);
    let slo = SloSpec::default_for_lwm();
    println!("\nengine goodput, Mixed workload, {count} requests at {rate} req/s:");
    let mut goodput = Vec::new();
    for policy in &policies {
        let system =
            SystemUnderTest::paper_single_node(SystemKind::LoongServe).with_attention(*policy);
        let (summary, outcome) = system.run(&trace, rate, &slo);
        println!(
            "SPARSE_ATTENTION policy={} completed={} makespan_s={:.3} \
             throughput_rps={:.4} slo_attainment={:.4} unfinished={}",
            policy.label(),
            summary.completed,
            summary.makespan_s,
            summary.throughput_rps,
            summary.slo_attainment,
            outcome.unfinished
        );
        csv.push_str(&format!(
            "engine_goodput,{},throughput_rps,{:.6}\n",
            policy_tag(policy),
            summary.throughput_rps
        ));
        goodput.push(summary);
    }

    if !smoke {
        let system = SystemUnderTest::paper_single_node(SystemKind::Vllm);
        let (summary, _) = system.run(&trace, rate, &slo);
        println!(
            "SPARSE_ATTENTION policy=vllm-dense completed={} makespan_s={:.3} \
             throughput_rps={:.4} slo_attainment={:.4}",
            summary.completed, summary.makespan_s, summary.throughput_rps, summary.slo_attainment
        );
        csv.push_str(&format!(
            "engine_goodput,vllm_dense,throughput_rps,{:.6}\n",
            summary.throughput_rps
        ));

        // 2-replica fleet on the same workload at twice the rate.
        let fleet_rate = 1.6;
        let fleet_trace =
            WorkloadSpec::Dataset(DatasetKind::Mixed).generate(fleet_rate, 2 * count, 2025);
        println!(
            "\nfleet goodput, 2 replicas, {} requests at {fleet_rate} req/s:",
            2 * count
        );
        for policy in &policies {
            let mut config =
                FleetConfig::paper_fleet(SystemKind::LoongServe, 2, RouterPolicy::RoundRobin);
            config.attention = *policy;
            let mut fleet = FleetEngine::new(config);
            let outcome = fleet.run(&fleet_trace);
            let makespan = outcome.sim_time.as_secs();
            let rps = outcome.records.len() as f64 / makespan;
            println!(
                "SPARSE_FLEET policy={} completed={} makespan_s={makespan:.3} \
                 trace_throughput_rps={rps:.4} unfinished={}",
                policy.label(),
                outcome.records.len(),
                outcome.unfinished
            );
            csv.push_str(&format!(
                "fleet_goodput,{},trace_throughput_rps,{rps:.6}\n",
                policy_tag(policy)
            ));
        }
    }

    if smoke {
        println!(
            "BENCH_SMOKE_JSON {{\"benchmark\":\"sparse_attention\",\"decode_flat_ratio\":{:.6},\"sparse_decode_speedup_1m\":{:.4},\"esp_prefill_adv_dense\":{:.4},\"esp_prefill_adv_hierarchical\":{:.4},\"goodput_dense_rps\":{:.4},\"goodput_page_sparse_rps\":{:.4}}}",
            flat_ratio,
            speedup_1m,
            esp_prefill_adv[0],
            esp_prefill_adv[2],
            goodput[0].throughput_rps,
            goodput[1].throughput_rps
        );
    }

    let path = write_figure_csv("sparse_attention.csv", &csv);
    println!("\nCSV written to {}", path.display());
}

fn argmin(xs: &[f64]) -> usize {
    xs.iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap_or(0)
}
