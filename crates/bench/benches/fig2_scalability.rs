//! Figure 2: scalability of requests with different lengths in the prefill
//! and decode phases as the degree of tensor parallelism grows.
//!
//! The paper's observation: long prefills scale almost linearly with more
//! GPUs, while short prefills and (especially) decode steps barely improve,
//! which is why a single static parallelism degree cannot fit both.

use loong_bench::{banner, normalize, write_figure_csv};
use loong_cluster::gpu::LinkSpec;
use loong_model::config::ModelConfig;
use loong_model::roofline::{CostModel, ParallelConfig};

fn main() {
    let cm = CostModel::builder(ModelConfig::lwm_1m_text()).build();
    let link = LinkSpec::nvlink_a800();
    let tps = [1usize, 2, 4, 8];

    banner("Figure 2 — iteration time vs. degree of tensor parallelism");
    let mut csv = String::from("phase,batch_size,len,tp,iteration_time_s,normalized\n");

    let prefill_cases: Vec<(usize, u64)> = vec![
        (16, 10),
        (16, 50),
        (16, 100),
        (16, 500),
        (1, 100),
        (1, 1_000),
        (1, 10_000),
        (1, 100_000),
    ];
    println!("\nprefill phase (iteration time in seconds):");
    println!(
        "{:>6} {:>9} | {:>10} {:>10} {:>10} {:>10} | speedup 1->8",
        "BS", "Len", "TP=1", "TP=2", "TP=4", "TP=8"
    );
    for (bs, len) in prefill_cases {
        let lens = vec![len; bs];
        let times: Vec<f64> = tps
            .iter()
            .map(|&tp| {
                cm.prefill_cost(&lens, ParallelConfig::new(tp, 1), link)
                    .total()
            })
            .collect();
        let norm = normalize(&times);
        for (i, &tp) in tps.iter().enumerate() {
            csv.push_str(&format!(
                "prefill,{bs},{len},{tp},{:.9},{:.6}\n",
                times[i], norm[i]
            ));
        }
        println!(
            "{:>6} {:>9} | {:>10.4} {:>10.4} {:>10.4} {:>10.4} | {:>6.2}x",
            bs,
            len,
            times[0],
            times[1],
            times[2],
            times[3],
            times[0] / times[3]
        );
    }

    let decode_cases: Vec<(usize, u64)> = vec![
        (16, 10),
        (16, 100),
        (16, 1_000),
        (1, 100),
        (1, 1_000),
        (1, 10_000),
        (1, 100_000),
    ];
    println!("\ndecode phase (iteration time in seconds):");
    println!(
        "{:>6} {:>9} | {:>10} {:>10} {:>10} {:>10} | speedup 1->8",
        "BS", "Len", "TP=1", "TP=2", "TP=4", "TP=8"
    );
    for (bs, len) in decode_cases {
        let ctx = vec![len; bs];
        let times: Vec<f64> = tps
            .iter()
            .map(|&tp| {
                cm.decode_cost(&ctx, ParallelConfig::new(tp, 1), 1, link)
                    .total()
            })
            .collect();
        let norm = normalize(&times);
        for (i, &tp) in tps.iter().enumerate() {
            csv.push_str(&format!(
                "decode,{bs},{len},{tp},{:.9},{:.6}\n",
                times[i], norm[i]
            ));
        }
        println!(
            "{:>6} {:>9} | {:>10.5} {:>10.5} {:>10.5} {:>10.5} | {:>6.2}x",
            bs,
            len,
            times[0],
            times[1],
            times[2],
            times[3],
            times[0] / times[3]
        );
    }

    // The §2.4 headline: 100K-token prefill vs 1K-token prefill on 8 GPUs.
    let p8 = ParallelConfig::new(8, 1);
    let ratio =
        cm.prefill_cost(&[100_000], p8, link).total() / cm.prefill_cost(&[1_000], p8, link).total();
    println!("\n100K-token prefill is {ratio:.1}x slower than 1K-token prefill on 8 GPUs (paper reports ~106x)");

    let path = write_figure_csv("fig2_scalability.csv", &csv);
    println!("\nCSV written to {}", path.display());
}
