//! Figure 11: multi-node performance on a 16-GPU (two-node) cluster serving
//! the Mixed workload. LoongServe extends ESP across nodes (DoP up to 8),
//! while the baselines deploy one independent engine per node.

use loong_bench::{banner, write_figure_csv};
use loongserve::prelude::*;
use loongserve::report;

fn main() {
    banner("Figure 11 — multi-node (2 x 8 GPUs) performance on Mixed");
    let config = SweepConfig {
        workload: WorkloadSpec::Dataset(DatasetKind::Mixed),
        rates: vec![0.1, 0.3, 0.6, 0.9],
        requests_per_run: 60,
        slo: SloSpec::default_for_lwm(),
        seed: 11,
        parallel: true,
    };
    let systems = [
        SystemKind::LoongServe,
        SystemKind::Vllm,
        SystemKind::LightLlmSplitFuse,
    ];
    let results = compare_systems(&systems, &config, SystemUnderTest::paper_two_node);

    println!("\n{}", report::sweep_markdown(&results));
    println!("{}", report::goodput_markdown(&results));
    for baseline in ["vLLM (TP=8)", "LightLLM w/ SplitFuse"] {
        if let Some(x) = report::throughput_improvement(&results, "LoongServe", baseline) {
            println!("LoongServe vs {baseline}: {x:.2}x sustained token throughput");
        }
    }

    let path = write_figure_csv("fig11_multinode.csv", &report::sweep_csv(&results));
    println!("\nCSV written to {}", path.display());
}
