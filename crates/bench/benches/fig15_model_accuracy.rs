//! Figure 15: accuracy of the fitted analytical model (Eq. 7) against
//! "measured" (roofline-substrate) prefill iteration times, for the three
//! parallelism strategies SP2TP4, SP4TP2 and SP8TP1 and batch sizes 1–8.

use loong_bench::{banner, write_figure_csv};
use loong_cluster::gpu::LinkSpec;
use loong_model::config::ModelConfig;
use loong_model::roofline::{CostModel, ParallelConfig};
use loong_model::sib::ScalingInfoBase;
use loong_simcore::rng::SimRng;

fn main() {
    let cm = CostModel::builder(ModelConfig::lwm_1m_text()).build();
    let link = LinkSpec::nvlink_a800();
    let strategies = [
        ("SP2TP4", ParallelConfig::new(4, 2)),
        ("SP4TP2", ParallelConfig::new(2, 4)),
        ("SP8TP1", ParallelConfig::new(1, 8)),
    ];
    let mut rng = SimRng::seed(15);
    let configs: Vec<ParallelConfig> = strategies.iter().map(|(_, p)| *p).collect();
    // Profile with 1% measurement noise, exactly as the real SIB would see.
    let sib = ScalingInfoBase::profile(&cm, &configs, link, 0.01, &mut rng);

    banner("Figure 15 — analytical model (alpha + beta*Sum(l) + gamma*Sum(l^2)) accuracy");
    let mut csv = String::from("strategy,batch_size,input_len,predicted_s,measured_s,rel_error\n");
    let batch_sizes = [1usize, 2, 4, 8];
    let lens: Vec<u64> = vec![25_000, 50_000, 100_000, 200_000, 300_000, 400_000, 500_000];

    let mut worst: f64 = 0.0;
    for (name, parallel) in strategies {
        let model = sib.prefill_model(parallel).expect("profiled");
        println!(
            "\n{name}: alpha={:.4e}  beta={:.4e}  gamma={:.4e}",
            model.alpha, model.beta, model.gamma
        );
        println!(
            "{:>4} {:>9} | {:>12} {:>12} | error",
            "BS", "Len", "predicted", "measured"
        );
        let mut errors = Vec::new();
        for &bs in &batch_sizes {
            for &len in &lens {
                // Keep the total token count within the context window.
                if bs as u64 * len > cm.model.max_context_len as u64 {
                    continue;
                }
                let batch = vec![len; bs];
                let predicted = model.predict(&batch);
                let measured = cm.prefill_cost(&batch, parallel, link).total();
                let err = ((predicted - measured) / measured).abs();
                errors.push(err);
                worst = worst.max(err);
                csv.push_str(&format!(
                    "{name},{bs},{len},{predicted:.6},{measured:.6},{err:.6}\n"
                ));
                if bs == 1 || len == 100_000 {
                    println!(
                        "{:>4} {:>9} | {:>12.3} {:>12.3} | {:>6.2}%",
                        bs,
                        len,
                        predicted,
                        measured,
                        err * 100.0
                    );
                }
            }
        }
        let mean_err = errors.iter().sum::<f64>() / errors.len() as f64;
        let max_err = errors.iter().copied().fold(0.0f64, f64::max);
        println!(
            "mean relative error {:.2}%, max {:.2}% over {} batches",
            mean_err * 100.0,
            max_err * 100.0,
            errors.len()
        );
    }
    println!(
        "\nworst-case relative error across all strategies: {:.2}% (paper reports <10%)",
        worst * 100.0
    );

    let path = write_figure_csv("fig15_model_accuracy.csv", &csv);
    println!("CSV written to {}", path.display());
}
