//! Figure 13: the elastic scale-up ablation.
//!
//! (a) SLO attainment / goodput of LoongServe with and without elastic
//!     scale-up on ShareGPT (short prompts, long outputs).
//! (b) The number of scale-up operations triggered per 10-second interval
//!     at a high request rate.

use loong_bench::{banner, write_figure_csv};
use loongserve::prelude::*;
use loongserve::report;

fn main() {
    banner("Figure 13a — SLO attainment with vs without elastic scale-up (ShareGPT)");
    let config = SweepConfig {
        workload: WorkloadSpec::Dataset(DatasetKind::ShareGpt),
        rates: vec![10.0, 20.0, 30.0, 45.0, 60.0],
        requests_per_run: 300,
        slo: SloSpec::default_for_lwm(),
        seed: 13,
        parallel: true,
    };
    let systems = [SystemKind::LoongServe, SystemKind::LoongServeNoScaleUp];
    let results = compare_systems(&systems, &config, SystemUnderTest::paper_single_node);
    println!("\n{}", report::sweep_markdown(&results));
    println!("{}", report::goodput_markdown(&results));
    let with = results
        .iter()
        .find(|r| r.system == "LoongServe")
        .map(|r| r.p90_goodput)
        .unwrap_or(0.0);
    let without = results
        .iter()
        .find(|r| r.system.contains("w/o Elastic Scale-up"))
        .map(|r| r.p90_goodput)
        .unwrap_or(0.0);
    if without > 0.0 {
        println!(
            "elastic scale-up improves P90 goodput by {:.2}x (paper reports 2.87x)",
            with / without
        );
    }
    let mut csv = report::sweep_csv(&results);

    banner("Figure 13b — scale-up operations per 10 s interval (ShareGPT)");
    let rate = 45.0;
    let trace = WorkloadSpec::Dataset(DatasetKind::ShareGpt).generate(rate, 600, 13);
    let system = SystemUnderTest::paper_single_node(SystemKind::LoongServe);
    let (_summary, outcome) = system.run(&trace, rate, &SloSpec::default_for_lwm());
    let mut counter = BinnedCounter::new(10.0);
    for e in &outcome.scaling_events {
        if e.kind == ScalingEventKind::ScaleUp {
            counter.record(e.at);
        }
    }
    println!("interval_start_s,scale_ups");
    csv.push_str("\ninterval_start_s,scale_ups\n");
    for (i, &count) in counter.bins().iter().enumerate() {
        println!("{},{count}", i * 10);
        csv.push_str(&format!("{},{count}\n", i * 10));
    }
    println!(
        "\nmean {:.2} scale-ups per 10 s, max {} (paper reports mean 7.12 at 25 req/s on its hardware)",
        counter.mean_per_bin(),
        counter.max_per_bin()
    );

    let path = write_figure_csv("fig13_scaleup_ablation.csv", &csv);
    println!("CSV written to {}", path.display());
}
