//! Engine-scaling benchmark: wall-clock cost of the serving-engine run loop
//! as the trace length grows.
//!
//! The global manager must decide inside an iteration-scale budget of tens
//! of milliseconds (paper §5), and the simulator's north star is replaying
//! million-request traces at hardware speed. This bench measures the only
//! number that matters for that goal: **simulated requests per wall-clock
//! second** on ShareGPT traces of 1k / 4k / 16k requests. A run loop that
//! costs O(all requests) per scheduling point shows up here as throughput
//! collapsing with trace length; an O(active) loop keeps it flat.
//!
//! Invocation (harness = false):
//!
//! ```text
//! cargo bench --bench engine_scaling              # 1k, 4k, 16k and 64k traces
//! cargo bench --bench engine_scaling -- --smoke   # 1k only (CI perf smoke)
//! ```
//!
//! The full million-request regime (streamed workload, 8-replica fleet,
//! crash-flushed frontend) lives in `cargo bench --bench million_scale`,
//! gated by `BENCH_million.json`.
//!
//! Reference numbers for the current tree are checked in as
//! `BENCH_engine.json` at the repository root.

use loong_bench::{banner, write_figure_csv};
use loongserve::prelude::*;
use std::time::Instant;

/// Offered ShareGPT rate (req/s). Chosen so the paper's single-node
/// configuration keeps up: the active set stays bounded while the trace
/// length grows, which is exactly the regime where per-point O(all
/// requests) scans dominate.
const RATE: f64 = 8.0;
const SEED: u64 = 2024;

struct Sample {
    requests: usize,
    wall_s: f64,
    sim_s: f64,
    iterations: u64,
    scheduler_calls: u64,
    completed: usize,
    req_per_wall_s: f64,
}

fn run_size(count: usize) -> Sample {
    let trace = WorkloadSpec::Dataset(DatasetKind::ShareGpt).generate(RATE, count, SEED);
    let system = SystemUnderTest::paper_single_node(SystemKind::LoongServe);
    let mut engine = system.build_engine(Some(&trace));
    let start = Instant::now();
    let outcome = engine.run(&trace);
    let wall_s = start.elapsed().as_secs_f64();
    Sample {
        requests: count,
        wall_s,
        sim_s: outcome.sim_time.as_secs(),
        iterations: outcome.iterations,
        scheduler_calls: outcome.scheduler_calls,
        completed: outcome.records.len(),
        req_per_wall_s: count as f64 / wall_s.max(1e-9),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sizes: &[usize] = if smoke {
        &[1_000]
    } else {
        &[1_000, 4_000, 16_000, 64_000]
    };

    banner(&format!(
        "Engine scaling — ShareGPT @ {RATE} req/s, LoongServe, 8 GPUs TP=2{}",
        if smoke { " (smoke: 1k only)" } else { "" }
    ));

    let mut csv = String::from("requests,wall_s,sim_s,iterations,scheduler_calls,req_per_wall_s\n");
    println!(
        "{:>9} {:>10} {:>10} {:>11} {:>11} {:>10} {:>16}",
        "requests", "wall_s", "sim_s", "iterations", "sched_calls", "completed", "req_per_wall_s"
    );
    for &count in sizes {
        let s = run_size(count);
        println!(
            "{:>9} {:>10.3} {:>10.1} {:>11} {:>11} {:>10} {:>16.1}",
            s.requests,
            s.wall_s,
            s.sim_s,
            s.iterations,
            s.scheduler_calls,
            s.completed,
            s.req_per_wall_s
        );
        // The line CI greps for in the perf smoke step.
        println!(
            "ENGINE_SCALING requests={} simulated_requests_per_wall_second={:.1}",
            s.requests, s.req_per_wall_s
        );
        if smoke {
            // Machine-readable, wall-clock-free metrics for the bench gate
            // (`cargo run -p xtask -- bench-gate BENCH_engine.json`).
            println!(
                "BENCH_SMOKE_JSON {{\"benchmark\":\"engine_scaling\",\"requests\":{},\"completed\":{},\"iterations\":{},\"scheduler_calls\":{},\"sim_s\":{:.3}}}",
                s.requests, s.completed, s.iterations, s.scheduler_calls, s.sim_s
            );
        }
        csv.push_str(&format!(
            "{},{:.6},{:.3},{},{},{:.1}\n",
            s.requests, s.wall_s, s.sim_s, s.iterations, s.scheduler_calls, s.req_per_wall_s
        ));
    }

    let path = write_figure_csv("engine_scaling.csv", &csv);
    println!("\nCSV written to {}", path.display());
}
