//! KV memory-pressure benchmark: recompute vs swap under overload.
//!
//! Drives a KV-starved single node (a few percent of the real slot budget)
//! through a bursty MMPP ShareGPT overload under both victim policies —
//! the vLLM-style baseline with preempt-and-recompute and the LoongServe
//! manager with the host-DRAM swap tier — and reports completion, pressure
//! activity (preemptions, swap traffic, stall time) and trace throughput.
//! The run also measures the simulator's own overhead on pressure-heavy
//! traces: eviction storms must not blow up the O(active) engine loop.
//!
//! Invocation (harness = false):
//!
//! ```text
//! cargo bench --bench kv_pressure              # 480-request trace
//! cargo bench --bench kv_pressure -- --smoke   # 120-request trace
//! ```
//!
//! Reference numbers for the current tree are checked in as
//! `BENCH_pressure.json` at the repository root.

use loong_bench::{banner, write_figure_csv};
use loongserve::prelude::*;
use std::time::Instant;

/// Total KV slots across the node (split across each system's instances).
const CAPACITY: u64 = 6_000;
const COUNT: usize = 480;
const SMOKE_COUNT: usize = 120;
const SEED: u64 = 2026;

fn arrivals() -> ArrivalProcess {
    ArrivalProcess::MarkovModulated {
        rate_high: 40.0,
        rate_low: 2.0,
        mean_high_secs: 3.0,
        mean_low_secs: 3.0,
    }
}

struct Sample {
    policy: &'static str,
    wall_s: f64,
    makespan_s: f64,
    completed: usize,
    unfinished: usize,
    throughput_rps: f64,
    preemptions: u64,
    swap_events: u64,
    swap_gb: f64,
    stall_s: f64,
}

fn run_policy(policy: &'static str, kind: SystemKind, mode: PressureMode, count: usize) -> Sample {
    let mut rng = SimRng::seed(SEED);
    let trace = Trace::generate(DatasetKind::ShareGpt, arrivals(), count, &mut rng);
    let instances = (8 / kind.tp(8)).max(1) as u64;
    let system = SystemUnderTest::paper_single_node(kind)
        .with_pressure(mode)
        .with_kv_capacity(CAPACITY / instances);
    let mut engine = system.build_engine(Some(&trace));
    let start = Instant::now();
    let outcome = engine.run(&trace);
    let wall_s = start.elapsed().as_secs_f64();
    let summary = RunSummary::from_records(
        policy,
        "ShareGPT burst",
        arrivals().mean_rate(),
        &outcome.records,
        &SloSpec::default_for_lwm(),
    );
    Sample {
        policy,
        wall_s,
        makespan_s: summary.makespan_s,
        completed: summary.completed,
        unfinished: outcome.unfinished,
        throughput_rps: summary.throughput_rps,
        preemptions: outcome.pressure.preemptions,
        swap_events: outcome.pressure.swap_out_events + outcome.pressure.swap_in_events,
        swap_gb: outcome.pressure.swap_bytes_total() / 1e9,
        stall_s: outcome.pressure.swap_stall_s,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let count = if smoke { SMOKE_COUNT } else { COUNT };

    banner(&format!(
        "KV memory pressure — bursty MMPP ShareGPT overload, {count} requests, \
         {CAPACITY} total KV slots{}",
        if smoke { " (smoke)" } else { "" }
    ));

    let samples = [
        run_policy(
            "recompute",
            SystemKind::Vllm,
            PressureMode::Recompute,
            count,
        ),
        run_policy(
            "swap",
            SystemKind::LoongServe,
            PressureMode::SwapToHost,
            count,
        ),
    ];

    let mut csv = String::from(
        "policy,wall_s,makespan_s,completed,unfinished,throughput_rps,preemptions,swap_events,swap_gb,stall_s\n",
    );
    println!(
        "{:>10} {:>8} {:>11} {:>10} {:>11} {:>15} {:>11} {:>11} {:>8} {:>8}",
        "policy",
        "wall_s",
        "makespan_s",
        "completed",
        "unfinished",
        "throughput_rps",
        "preemptions",
        "swap_events",
        "swap_gb",
        "stall_s"
    );
    for s in &samples {
        println!(
            "{:>10} {:>8.3} {:>11.1} {:>10} {:>11} {:>15.2} {:>11} {:>11} {:>8.2} {:>8.3}",
            s.policy,
            s.wall_s,
            s.makespan_s,
            s.completed,
            s.unfinished,
            s.throughput_rps,
            s.preemptions,
            s.swap_events,
            s.swap_gb,
            s.stall_s
        );
        // The line CI greps for in the pressure smoke step.
        println!(
            "KV_PRESSURE policy={} completed={} unfinished={} preemptions={} swap_events={} trace_throughput_rps={:.2}",
            s.policy, s.completed, s.unfinished, s.preemptions, s.swap_events, s.throughput_rps
        );
        csv.push_str(&format!(
            "{},{:.6},{:.3},{},{},{:.3},{},{},{:.4},{:.4}\n",
            s.policy,
            s.wall_s,
            s.makespan_s,
            s.completed,
            s.unfinished,
            s.throughput_rps,
            s.preemptions,
            s.swap_events,
            s.swap_gb,
            s.stall_s
        ));
    }

    if smoke {
        // Machine-readable, wall-clock-free metrics for the bench gate
        // (`cargo run -p xtask -- bench-gate BENCH_pressure.json`).
        let r = &samples[0];
        let w = &samples[1];
        println!(
            "BENCH_SMOKE_JSON {{\"benchmark\":\"kv_pressure\",\"recompute_completed\":{},\"recompute_unfinished\":{},\"recompute_preemptions\":{},\"swap_completed\":{},\"swap_unfinished\":{},\"swap_events\":{}}}",
            r.completed, r.unfinished, r.preemptions, w.completed, w.unfinished, w.swap_events
        );
    }

    let path = write_figure_csv("kv_pressure.csv", &csv);
    println!("\nCSV written to {}", path.display());
}
