//! Autoscale benchmark: SLO-goodput per replica-second under overload.
//!
//! Replays one mixed-class diurnal + flash-crowd trace against LoongServe
//! fleets provisioned four ways — static fleets of every size from 1 to
//! the maximum, an SLO-driven elastic fleet, and the elastic fleet with
//! the admission controller armed. The headline metric is **SLO-goodput
//! per replica-second**: completions inside the SLO divided by the
//! replica-seconds the fleet actually paid for. A static fleet sized for
//! the flash wastes replica-seconds through the trough; a static fleet
//! sized for the trough melts in the flash; the autoscaled fleet must beat
//! both, and shedding must hold interactive SLO attainment through the
//! burst. Both claims are asserted inline on every run.
//!
//! Invocation (harness = false):
//!
//! ```text
//! cargo bench --bench autoscale              # 500-event trace
//! cargo bench --bench autoscale -- --smoke   # 180-event trace
//! ```
//!
//! The smoke mode additionally emits one `BENCH_SMOKE_JSON` line of
//! deterministic (wall-clock-free) metrics; CI feeds it to
//! `cargo run -p xtask -- bench-gate BENCH_autoscale.json`, which
//! compares it against the reference checked in at the repository root.

use loong_bench::{banner, write_figure_csv};
use loongserve::prelude::*;
use std::time::Instant;

const COUNT: usize = 600;
const SMOKE_COUNT: usize = 280;
const MAX_REPLICAS: usize = 4;
const SEED: u64 = 2026;

const TROUGH_RATE: f64 = 0.4;
const PEAK_RATE: f64 = 1.2;
const PERIOD_S: f64 = 300.0;
const FLASH_START_S: f64 = 80.0;
const FLASH_SECS: f64 = 50.0;
const FLASH_RATE: f64 = 8.0;

fn arrivals() -> ArrivalProcess {
    ArrivalProcess::DiurnalFlash {
        trough_rate: TROUGH_RATE,
        peak_rate: PEAK_RATE,
        period_secs: PERIOD_S,
        flash_start_s: FLASH_START_S,
        flash_secs: FLASH_SECS,
        flash_rate: FLASH_RATE,
    }
}

fn scaler() -> AutoscalerConfig {
    let mut scaler = AutoscalerConfig::overload_defaults(1, MAX_REPLICAS);
    scaler.control_interval_s = 10.0;
    scaler.cooldown_s = 5.0;
    scaler.provisioning_delay_s = 5.0;
    scaler.scale_up_backlog_tokens = 24_000;
    scaler.scale_down_backlog_tokens = 12_000;
    scaler
}

/// The elastic configuration shared by the autoscaled scenarios. The
/// *signal* SLO the controller tracks is 2x looser than the measurement
/// SLO: late-finishing flash stragglers should not re-trigger scale-ups
/// after the burst has already passed.
fn elastic_cfg() -> ElasticConfig {
    ElasticConfig::new(scaler()).with_signal_slo(SloSpec::scaled_from_baseline(
        0.05,
        0.002,
        0.05,
        2.0 * SloSpec::PAPER_SCALE,
    ))
}

fn admission() -> AdmissionConfig {
    let mut adm = AdmissionConfig::overload_defaults();
    adm.replica_capacity_tokens = 25_000;
    adm.service_tokens_per_s = 8_000.0;
    adm
}

struct Sample {
    label: String,
    wall_s: f64,
    completed: usize,
    shed: usize,
    replica_seconds: f64,
    goodput_per_rs: f64,
    interactive_flash_attainment: f64,
    makespan_s: f64,
    scale_ups: u64,
    scale_downs: u64,
}

/// SLO attainment of the interactive requests that arrived during the
/// flash crowd (with a short cool-off) — the burst the shedder must
/// protect.
fn interactive_flash_attainment(trace: &Trace, records: &[RequestRecord], slo: &SloSpec) -> f64 {
    let window = FLASH_START_S..(FLASH_START_S + FLASH_SECS + 10.0);
    let burst_ids: std::collections::BTreeSet<RequestId> = trace
        .requests
        .iter()
        .filter(|r| r.class == TrafficClass::Interactive && window.contains(&r.arrival.as_secs()))
        .map(|r| r.id)
        .collect();
    let burst: Vec<RequestRecord> = records
        .iter()
        .filter(|r| burst_ids.contains(&r.id))
        .copied()
        .collect();
    if burst_ids.is_empty() {
        return 1.0;
    }
    // Non-completions count against the burst: attainment over arrivals,
    // not over survivors.
    let met = burst.iter().filter(|r| slo.met_by(r)).count();
    met as f64 / burst_ids.len() as f64
}

fn static_fleet(n: usize, trace: &Trace, slo: &SloSpec) -> Sample {
    let mut config =
        FleetConfig::paper_fleet(SystemKind::LoongServe, n, RouterPolicy::JoinShortestQueue);
    config.parallel = true;
    let mut engine = FleetEngine::new(config);
    let start = Instant::now();
    let outcome = engine.run(trace);
    let wall_s = start.elapsed().as_secs_f64();
    let replica_seconds = n as f64 * outcome.sim_time.as_secs();
    Sample {
        label: format!("static x{n}"),
        wall_s,
        completed: outcome.records.len(),
        shed: 0,
        replica_seconds,
        goodput_per_rs: slo_goodput_per_replica_second(&outcome.records, slo, replica_seconds),
        interactive_flash_attainment: interactive_flash_attainment(trace, &outcome.records, slo),
        makespan_s: outcome.sim_time.as_secs(),
        scale_ups: 0,
        scale_downs: 0,
    }
}

fn elastic_fleet(label: &str, trace: &Trace, slo: &SloSpec, cfg: &ElasticConfig) -> Sample {
    let mut config = FleetConfig::paper_fleet(
        SystemKind::LoongServe,
        MAX_REPLICAS,
        RouterPolicy::JoinShortestQueue,
    );
    // Pooled era execution; serial-equivalent per streaming_properties.
    config.parallel = true;
    let mut engine = FleetEngine::new(config);
    let start = Instant::now();
    let outcome = engine.run_elastic(trace, cfg);
    let wall_s = start.elapsed().as_secs_f64();
    assert_eq!(
        outcome.total_requests(),
        trace.len(),
        "{label}: exactly-once accounting must hold"
    );
    Sample {
        label: label.to_string(),
        wall_s,
        completed: outcome.fleet.records.len(),
        shed: outcome.shed.len(),
        replica_seconds: outcome.elasticity.replica_seconds,
        goodput_per_rs: slo_goodput_per_replica_second(
            &outcome.fleet.records,
            slo,
            outcome.elasticity.replica_seconds,
        ),
        interactive_flash_attainment: interactive_flash_attainment(
            trace,
            &outcome.fleet.records,
            slo,
        ),
        makespan_s: outcome.fleet.sim_time.as_secs(),
        scale_ups: outcome.elasticity.scale_up_events,
        scale_downs: outcome.elasticity.scale_down_events,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let count = if smoke { SMOKE_COUNT } else { COUNT };

    banner(&format!(
        "Autoscale — mixed-class diurnal + flash trace ({count} events), LoongServe \
         fleets behind JSQ: static x1..x{MAX_REPLICAS} vs SLO-driven elastic \
         (1..{MAX_REPLICAS}){}",
        if smoke { " (smoke)" } else { "" }
    ));

    let mut rng = SimRng::seed(SEED);
    let trace = Trace::generate_mixed_classes(
        arrivals(),
        count,
        &MixedClassProfile::overload_mix(),
        &mut rng,
    );
    let slo = SloSpec::default_for_lwm();
    println!(
        "trace: {} requests (diurnal {TROUGH_RATE}-{PEAK_RATE}/s, period {PERIOD_S} s; \
         flash {FLASH_RATE}/s at {FLASH_START_S} s for {FLASH_SECS} s)",
        trace.len()
    );

    let mut samples: Vec<Sample> = (1..=MAX_REPLICAS)
        .map(|n| static_fleet(n, &trace, &slo))
        .collect();
    samples.push(elastic_fleet("autoscaled", &trace, &slo, &elastic_cfg()));
    samples.push(elastic_fleet(
        "autoscaled+shed",
        &trace,
        &slo,
        &elastic_cfg().with_admission(admission()),
    ));

    let mut csv = String::from(
        "scenario,wall_s,completed,shed,replica_seconds,goodput_per_replica_second,\
         interactive_flash_attainment,makespan_s,scale_ups,scale_downs\n",
    );
    println!(
        "{:>16} {:>8} {:>10} {:>6} {:>11} {:>14} {:>12} {:>10} {:>7} {:>7}",
        "scenario",
        "wall_s",
        "completed",
        "shed",
        "replica_s",
        "goodput/rep-s",
        "flash_attain",
        "makespan_s",
        "ups",
        "downs"
    );
    for s in &samples {
        println!(
            "{:>16} {:>8.3} {:>10} {:>6} {:>11.1} {:>14.5} {:>12.3} {:>10.1} {:>7} {:>7}",
            s.label,
            s.wall_s,
            s.completed,
            s.shed,
            s.replica_seconds,
            s.goodput_per_rs,
            s.interactive_flash_attainment,
            s.makespan_s,
            s.scale_ups,
            s.scale_downs
        );
        csv.push_str(&format!(
            "{},{:.6},{},{},{:.3},{:.6},{:.6},{:.3},{},{}\n",
            s.label,
            s.wall_s,
            s.completed,
            s.shed,
            s.replica_seconds,
            s.goodput_per_rs,
            s.interactive_flash_attainment,
            s.makespan_s,
            s.scale_ups,
            s.scale_downs
        ));
    }

    // The tier's headline contracts, asserted on every bench run.
    let best_static = samples[..MAX_REPLICAS]
        .iter()
        .max_by(|a, b| a.goodput_per_rs.total_cmp(&b.goodput_per_rs))
        .expect("static fleets exist");
    let autoscaled = &samples[MAX_REPLICAS];
    let shed = &samples[MAX_REPLICAS + 1];
    assert!(
        autoscaled.goodput_per_rs > best_static.goodput_per_rs,
        "autoscaled ({:.5}) must beat the best static fleet ({}: {:.5}) on \
         SLO-goodput per replica-second",
        autoscaled.goodput_per_rs,
        best_static.label,
        best_static.goodput_per_rs
    );
    assert!(
        shed.interactive_flash_attainment >= 0.90,
        "shedding must hold interactive SLO attainment >= 90% through the \
         flash, got {:.3}",
        shed.interactive_flash_attainment
    );
    assert!(autoscaled.scale_ups >= 1, "the flash must trigger scale-up");
    assert!(
        autoscaled.scale_downs >= 1,
        "the trough must trigger scale-down"
    );

    // The line CI greps for in the autoscale smoke step.
    println!(
        "AUTOSCALE best_static={} best_static_goodput={:.5} autoscaled_goodput={:.5} \
         shed_goodput={:.5} shed_count={} flash_attainment={:.3} scale_ups={} scale_downs={}",
        best_static.label,
        best_static.goodput_per_rs,
        autoscaled.goodput_per_rs,
        shed.goodput_per_rs,
        shed.shed,
        shed.interactive_flash_attainment,
        autoscaled.scale_ups,
        autoscaled.scale_downs
    );
    if smoke {
        // Machine-readable, wall-clock-free metrics for the bench gate.
        println!(
            "BENCH_SMOKE_JSON {{\"benchmark\":\"autoscale\",\"completed_autoscaled\":{},\"completed_shed\":{},\"shed_count\":{},\"replica_seconds_autoscaled\":{:.1},\"goodput_ratio_vs_best_static\":{:.4},\"flash_attainment_shed\":{:.4},\"scale_ups\":{},\"scale_downs\":{}}}",
            autoscaled.completed,
            shed.completed,
            shed.shed,
            autoscaled.replica_seconds,
            autoscaled.goodput_per_rs / best_static.goodput_per_rs,
            shed.interactive_flash_attainment,
            autoscaled.scale_ups,
            autoscaled.scale_downs
        );
    }

    let path = write_figure_csv("autoscale.csv", &csv);
    println!("\nCSV written to {}", path.display());
}
