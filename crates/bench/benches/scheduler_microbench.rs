//! Criterion micro-benchmarks of the scheduling hot path.
//!
//! The paper stresses that the global manager must decide within an
//! iteration-scale budget (tens of milliseconds). These benchmarks measure
//! the cost of the batching DP (naive vs. monotone-optimised), a full
//! LoongServe scheduling step, and one simulated serving iteration, to show
//! the Rust implementation stays far inside that budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loong_cluster::topology::ClusterSpec;
use loong_esp::instance::InstanceRegistry;
use loong_kvcache::unified::UnifiedKvPool;
use loong_model::config::ModelConfig;
use loong_model::roofline::CostModel;
use loong_model::sib::ScalingInfoBase;
use loong_sched::manager::batching::{batch_requests, batch_requests_naive};
use loong_sched::manager::LoongServeScheduler;
use loong_sched::types::{PendingRequest, Scheduler, SchedulerView};
use loong_simcore::ids::{InstanceId, RequestId};
use loong_simcore::rng::SimRng;
use loong_simcore::time::SimTime;

struct Fixture {
    registry: InstanceRegistry,
    cost_model: CostModel,
    sib: ScalingInfoBase,
    pool: UnifiedKvPool,
    pending: Vec<PendingRequest>,
    idle: Vec<InstanceId>,
}

fn fixture(num_pending: usize) -> Fixture {
    let registry = InstanceRegistry::build(&ClusterSpec::single_node_a800(8), 2);
    let cost_model = CostModel::builder(ModelConfig::lwm_1m_text()).build();
    let mut rng = SimRng::seed(77);
    let configs: Vec<_> = (1..=4)
        .map(|sp| loong_model::roofline::ParallelConfig::new(2, sp))
        .collect();
    let sib = ScalingInfoBase::profile(
        &cost_model,
        &configs,
        ClusterSpec::single_node_a800(8).intra_node_link,
        0.0,
        &mut rng,
    );
    let idle = registry.all_ids();
    let pending: Vec<PendingRequest> = (0..num_pending)
        .map(|i| PendingRequest {
            id: RequestId(i as u64),
            arrival: SimTime::ZERO,
            input_len: 1_000 + (i as u64 * 37_123) % 150_000,
            prefilled_len: 0,
            max_output_len: 256,
        })
        .collect();
    Fixture {
        registry,
        cost_model,
        sib,
        pool: UnifiedKvPool::new(4, 500_000),
        pending,
        idle,
    }
}

fn view(f: &Fixture) -> SchedulerView<'_> {
    SchedulerView {
        now: SimTime::ZERO,
        pending: &f.pending,
        decoding: &[],
        swapped: &[],
        idle_instances: &f.idle,
        busy_instances: &[],
        pool: &f.pool,
        registry: &f.registry,
        cost_model: &f.cost_model,
        sib: &f.sib,
        avg_decode_latency_s: 0.0,
    }
}

fn bench_batching_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("batching_dp");
    for &n in &[4usize, 8, 16, 32] {
        let f = fixture(n);
        let admitted: Vec<(RequestId, u64)> =
            f.pending.iter().map(|p| (p.id, p.input_len)).collect();
        let instances = f.registry.all_ids();
        group.bench_with_input(BenchmarkId::new("optimized", n), &n, |b, _| {
            b.iter(|| batch_requests(&view(&f), &admitted, &instances))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| batch_requests_naive(&view(&f), &admitted, &instances))
        });
    }
    group.finish();
}

fn bench_full_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("loongserve_schedule");
    for &n in &[8usize, 64, 256] {
        let f = fixture(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut sched = LoongServeScheduler::new();
                sched.schedule(&view(&f))
            })
        });
    }
    group.finish();
}

fn bench_serving_iterations(c: &mut Criterion) {
    use loongserve::prelude::*;
    let mut group = c.benchmark_group("end_to_end_run");
    group.sample_size(10);
    group.bench_function("loongserve_sharegpt_40req", |b| {
        b.iter(|| {
            let system = SystemUnderTest::paper_single_node(SystemKind::LoongServe);
            let trace = WorkloadSpec::Dataset(DatasetKind::ShareGpt).generate(5.0, 40, 3);
            system.run(&trace, 5.0, &SloSpec::default_for_lwm())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_batching_dp,
    bench_full_schedule,
    bench_serving_iterations
);
criterion_main!(benches);
