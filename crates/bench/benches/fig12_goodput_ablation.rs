//! Figure 12: P90 goodput of LoongServe vs the static-parallelism ablations
//! (pure TP=8, static hybrid TP=2×SP=4, and four replicated TP=2 engines)
//! under Zipf-reshaped Mixed workloads capped at 200K tokens.

use loong_bench::{banner, write_figure_csv};
use loongserve::prelude::*;
use loongserve::report;

fn main() {
    let mut csv = String::new();
    for &zipf in &[1.0f64, 1.2, 1.4] {
        banner(&format!("Figure 12 — P90 goodput, Mixed with Zipf={zipf}"));
        // Steeper Zipf exponents skew towards short requests and sustain
        // higher rates, as in the paper's three panels.
        let rates: Vec<f64> = match zipf {
            z if z < 1.1 => vec![0.3, 0.8, 1.5, 2.5, 4.0],
            z if z < 1.3 => vec![0.5, 1.5, 3.0, 5.0, 8.0],
            _ => vec![1.0, 3.0, 6.0, 9.0, 14.0],
        };
        let config = SweepConfig {
            workload: WorkloadSpec::ZipfMixed { exponent: zipf },
            rates,
            requests_per_run: 80,
            slo: SloSpec::default_for_lwm(),
            seed: 12,
            parallel: true,
        };
        let results = compare_systems(
            &SystemKind::figure12_systems(),
            &config,
            SystemUnderTest::paper_single_node,
        );
        println!("\n{}", report::goodput_markdown(&results));
        let loong = results
            .iter()
            .find(|r| r.system == "LoongServe")
            .map(|r| r.p90_goodput)
            .unwrap_or(0.0);
        for r in &results {
            if r.system != "LoongServe" && r.p90_goodput > 0.0 {
                println!(
                    "LoongServe vs {}: {:.2}x P90 goodput",
                    r.system,
                    loong / r.p90_goodput
                );
            }
        }
        csv.push_str(&report::sweep_csv(&results));
    }
    let path = write_figure_csv("fig12_goodput_ablation.csv", &csv);
    println!("\nCSV written to {}", path.display());
}
