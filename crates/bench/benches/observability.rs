//! Tracing-overhead benchmark: what the observability tier costs.
//!
//! Replays the same streamed reliable workload twice over a 4-replica
//! LoongServe fleet under a staggered crash schedule:
//!
//! * **untraced** — `run_reliable_stream`, the recorder-less path (the
//!   armed no-op sink compiles to the same thing: the recorder option is
//!   `None` and every emission site is a branch-not-taken);
//! * **traced** — `run_reliable_stream_traced` with the default
//!   [`TraceConfig`]: 1% deterministic span sampling, always-on
//!   per-replica timeseries, per-class time attribution.
//!
//! Both arms must produce bit-for-bit identical outcomes (the inertness
//! contract pinned by `tests/observability_properties.rs`), so the only
//! thing that can differ is wall-clock — and the smoke gate asserts the
//! traced arm stays within 10% of the untraced one. The recorder's
//! residency ledger (sampled requests, spans, series bins, peak open
//! state) is deterministic and gated against `BENCH_obs.json`; wall-clock
//! numbers are report-only.
//!
//! Invocation (harness = false):
//!
//! ```text
//! cargo bench --bench observability            # 100k requests, best-of-2 walls
//! cargo bench --bench observability -- --smoke # 20k requests, best-of-3, <10% assert
//! ```

use loong_bench::banner;
use loongserve::prelude::*;
use std::time::Instant;

const RATE: f64 = 120.0;
const COUNT: usize = 100_000;
const SMOKE_COUNT: usize = 20_000;
const REPLICAS: usize = 4;
const CRASH_PERIOD_S: f64 = 30.0;
const SEED: u64 = 2026;

/// Every replica crashes once per `period` seconds, staggered — same
/// shape as the million-scale bench so the eras keep flushing.
fn staggered_schedule(replicas: usize, period: f64, horizon: f64) -> FailureSchedule {
    let mut events = Vec::new();
    for r in 0..replicas {
        let offset = period * (r as f64 + 1.0) / replicas as f64;
        let mut at = offset;
        while at < horizon {
            events.push(FailureEvent::new(
                ReplicaId::from(r),
                SimTime::from_secs(at),
                SimTime::from_secs(at + 1.0),
            ));
            at += period;
        }
    }
    FailureSchedule::from_events(events)
}

fn reliability(count: usize) -> ReliabilityConfig {
    let horizon = count as f64 / RATE + 200.0;
    ReliabilityConfig::new(staggered_schedule(REPLICAS, CRASH_PERIOD_S, horizon))
        .with_retry(RetryPolicy::exponential(3, 0.25))
        .with_sla_window(60.0)
}

fn fleet() -> FleetEngine {
    let mut config = FleetConfig::paper_fleet(
        SystemKind::LoongServe,
        REPLICAS,
        RouterPolicy::JoinShortestQueue,
    );
    config.parallel = true;
    FleetEngine::new(config)
}

fn stream(count: usize) -> TraceStream {
    TraceStream::dataset(
        DatasetKind::ShareGpt,
        ArrivalProcess::Poisson { rate: RATE },
        count,
        &mut SimRng::seed(SEED),
    )
}

/// One arm execution: wall seconds plus the outcome's Debug rendering
/// (the bit-for-bit equality witness) and the recorder, if armed.
fn run_arm(count: usize, traced: bool) -> (f64, String, Option<TraceRecorder>) {
    let rel = reliability(count);
    let mut engine = fleet();
    let start = Instant::now();
    let (outcome, footprint, recorder) = if traced {
        let mut rec = TraceRecorder::new(TraceConfig::default());
        let (outcome, footprint) = engine.run_reliable_stream_traced(stream(count), &rel, &mut rec);
        (outcome, footprint, Some(rec))
    } else {
        let (outcome, footprint) = engine.run_reliable_stream(stream(count), &rel);
        (outcome, footprint, None)
    };
    let wall_s = start.elapsed().as_secs_f64();
    assert_eq!(outcome.total_requests(), count);
    (wall_s, format!("{outcome:?}{footprint:?}"), recorder)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let (count, rounds) = if smoke { (SMOKE_COUNT, 3) } else { (COUNT, 2) };

    banner(&format!(
        "Observability overhead — ShareGPT @ {RATE} req/s, {count} requests streamed, \
         {REPLICAS} LoongServe replicas, crashes every {CRASH_PERIOD_S}s; untraced vs \
         1%-sampled recorder, best-of-{rounds} walls{}",
        if smoke { " (smoke)" } else { "" }
    ));

    let profile = SelfProfile::start();
    let mut best_plain = f64::INFINITY;
    let mut best_traced = f64::INFINITY;
    let mut recorder = None;
    // Interleave the arms so ambient load hits both symmetrically.
    for _ in 0..rounds {
        let (wall, plain_witness, _) = run_arm(count, false);
        best_plain = best_plain.min(wall);
        let (wall, witness, rec) = run_arm(count, true);
        best_traced = best_traced.min(wall);
        assert_eq!(
            plain_witness, witness,
            "tracing must be inert: traced and untraced outcomes diverged"
        );
        recorder = rec;
    }
    let recorder = recorder.expect("traced arm ran");
    let ledger = recorder.ledger();
    let completed = recorder
        .series()
        .values()
        .map(|s| s.completions.total())
        .sum::<u64>();
    let overhead_ratio = best_traced / best_plain.max(1e-9);

    // The recorder's residency proof: O(sampled + bins + peak-open), with
    // the sampled set within a factor of two of the nominal 1%.
    assert_eq!(ledger.open_requests, 0);
    assert!(ledger.spans_dropped == 0 && ledger.instants_dropped == 0);
    let sampled_share = ledger.sampled_requests as f64 / count as f64;
    assert!(
        (0.005..=0.02).contains(&sampled_share),
        "1% sampling drifted: {} of {count} sampled",
        ledger.sampled_requests
    );

    println!(
        "{:>9} {:>9} {:>8} {:>11} {:>10} {:>13} {:>13} {:>9}",
        "sampled",
        "spans",
        "instants",
        "series_bins",
        "peak_open",
        "untraced_s",
        "traced_s",
        "ratio"
    );
    println!(
        "{:>9} {:>9} {:>8} {:>11} {:>10} {:>13.3} {:>13.3} {:>9.3}",
        ledger.sampled_requests,
        ledger.spans_recorded,
        ledger.instants_recorded,
        ledger.series_bins,
        ledger.peak_open_requests,
        best_plain,
        best_traced,
        overhead_ratio
    );
    println!("report-only self-profile: {}", profile.report());

    // The line CI greps for in the observability smoke step.
    println!(
        "OBSERVABILITY sampled={} spans={} overhead_ratio={:.3}",
        ledger.sampled_requests, ledger.spans_recorded, overhead_ratio
    );

    if smoke {
        assert!(
            overhead_ratio < 1.10,
            "tracing at 1% sampling must cost <10% wall-clock: untraced {best_plain:.3}s, \
             traced {best_traced:.3}s (ratio {overhead_ratio:.3})"
        );
        // Machine-readable metrics for the bench gate; overhead_ratio is
        // wall-clock and stays out of the gated set.
        println!(
            "BENCH_SMOKE_JSON {{\"benchmark\":\"observability\",\"sampled\":{},\"spans\":{},\"instants\":{},\"series_bins\":{},\"peak_open\":{},\"completed\":{},\"overhead_ratio\":{:.3}}}",
            ledger.sampled_requests,
            ledger.spans_recorded,
            ledger.instants_recorded,
            ledger.series_bins,
            ledger.peak_open_requests,
            completed,
            overhead_ratio
        );
    }
}
