//! Reliability benchmark: availability and re-prefill cost under crashes.
//!
//! Replays one ShareGPT trace against a 3-replica LoongServe fleet under a
//! seeded MTBF/MTTR failure schedule, once per casualty policy — fail-fast
//! (no retries), a three-attempt exponential retry budget, and retries
//! plus a per-replica circuit breaker — with an armed-but-idle run as the
//! baseline. Reports completions, terminal failures, availability,
//! recovered requests, re-prefilled prompt tokens (the crash tax under
//! long contexts) and breaker trips. Exactly-once accounting is asserted
//! inline on every run.
//!
//! Invocation (harness = false):
//!
//! ```text
//! cargo bench --bench reliability              # 800-request trace
//! cargo bench --bench reliability -- --smoke   # 240-request trace
//! ```
//!
//! The smoke mode additionally emits one `BENCH_SMOKE_JSON` line of
//! deterministic (wall-clock-free) metrics; CI feeds it to
//! `cargo run -p xtask -- bench-gate BENCH_reliability.json`, which
//! compares it against the reference checked in at the repository root.

use loong_bench::{banner, write_figure_csv};
use loongserve::prelude::*;
use std::time::Instant;

const COUNT: usize = 800;
const SMOKE_COUNT: usize = 240;
const RATE: f64 = 6.0;
const REPLICAS: usize = 3;
const SEED: u64 = 2028;

struct Sample {
    label: &'static str,
    wall_s: f64,
    outcome: ReliableFleetOutcome,
}

impl Sample {
    fn availability(&self) -> f64 {
        let completed = self.outcome.fleet.records.len() as f64;
        let failed = self.outcome.failed.len() as f64;
        completed / (completed + failed).max(1.0)
    }
}

fn run(label: &'static str, trace: &Trace, rel: &ReliabilityConfig) -> Sample {
    let mut config = FleetConfig::paper_fleet(
        SystemKind::LoongServe,
        REPLICAS,
        RouterPolicy::JoinShortestQueue,
    );
    // Era segments run on the bounded worker pool; bit-for-bit equal to
    // serial (tests/streaming_properties.rs), so the gate stays valid.
    config.parallel = true;
    let mut fleet = FleetEngine::new(config);
    let start = Instant::now();
    let outcome = fleet.run_reliable(trace, rel);
    let wall_s = start.elapsed().as_secs_f64();
    assert_eq!(
        outcome.total_requests(),
        trace.len(),
        "{label}: exactly-once accounting must hold"
    );
    Sample {
        label,
        wall_s,
        outcome,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let count = if smoke { SMOKE_COUNT } else { COUNT };

    banner(&format!(
        "Reliability — ShareGPT, {count} requests @ {RATE}/s, {REPLICAS} LoongServe \
         replicas, JSQ routing, seeded MTBF/MTTR crashes{}",
        if smoke { " (smoke)" } else { "" }
    ));

    let trace = WorkloadSpec::Dataset(DatasetKind::ShareGpt).generate(RATE, count, SEED);
    let span_s = count as f64 / RATE;
    let schedule = FailureSchedule::generate(
        REPLICAS,
        SimDuration::from_secs(span_s),
        30.0,
        8.0,
        0xfa11_5eed,
    );
    println!(
        "trace: {} requests over {span_s:.0} s; schedule: {} crashes, {:.1} s total downtime",
        trace.len(),
        schedule.events().len(),
        schedule.total_downtime().as_secs()
    );

    let retry = RetryPolicy::exponential(3, 0.5);
    let breaker = CircuitBreakerConfig::new(2, 20.0, 15.0);
    let idle = run(
        "armed-idle",
        &trace,
        &ReliabilityConfig::disarmed()
            .with_retry(retry)
            .with_breaker(breaker),
    );
    let fail_fast = run(
        "fail-fast",
        &trace,
        &ReliabilityConfig::new(schedule.clone()),
    );
    let retried = run(
        "retry-x3",
        &trace,
        &ReliabilityConfig::new(schedule.clone()).with_retry(retry),
    );
    let breakered = run(
        "retry+breaker",
        &trace,
        &ReliabilityConfig::new(schedule)
            .with_retry(retry)
            .with_breaker(breaker),
    );

    // The tier's headline contract, asserted on every bench run.
    assert!(idle.outcome.reliability.is_zero());
    assert_eq!(idle.availability(), 1.0);
    assert!(!fail_fast.outcome.failed.is_empty(), "crashes must bite");
    assert!(retried.availability() >= fail_fast.availability());
    assert!(retried.outcome.reliability.re_prefilled_tokens > 0);

    let mut csv = String::from(
        "scenario,wall_s,completed,failed,availability,failed_attempts,retries_scheduled,\
         recovered,re_prefilled_tokens,breaker_opens,makespan_s\n",
    );
    println!(
        "{:>14} {:>8} {:>10} {:>7} {:>13} {:>9} {:>11} {:>13} {:>9} {:>11}",
        "scenario",
        "wall_s",
        "completed",
        "failed",
        "availability",
        "recovered",
        "re-prefill",
        "breaker_opens",
        "crashes",
        "makespan_s"
    );
    for s in [&idle, &fail_fast, &retried, &breakered] {
        let r = &s.outcome.reliability;
        println!(
            "{:>14} {:>8.3} {:>10} {:>7} {:>13.4} {:>9} {:>11} {:>13} {:>9} {:>11.1}",
            s.label,
            s.wall_s,
            s.outcome.fleet.records.len(),
            s.outcome.failed.len(),
            s.availability(),
            r.recovered_requests,
            r.re_prefilled_tokens,
            r.breaker_opens,
            r.crashes,
            s.outcome.fleet.sim_time.as_secs()
        );
        csv.push_str(&format!(
            "{},{:.6},{},{},{:.6},{},{},{},{},{},{:.3}\n",
            s.label,
            s.wall_s,
            s.outcome.fleet.records.len(),
            s.outcome.failed.len(),
            s.availability(),
            r.failed_attempts,
            r.retries_scheduled,
            r.recovered_requests,
            r.re_prefilled_tokens,
            r.breaker_opens,
            s.outcome.fleet.sim_time.as_secs()
        ));
    }

    // The line CI greps for in the reliability smoke step.
    println!(
        "RELIABILITY completed_fail_fast={} failed_fail_fast={} completed_retry={} \
         failed_retry={} recovered={} re_prefilled_tokens={} breaker_opens={} crashes={}",
        fail_fast.outcome.fleet.records.len(),
        fail_fast.outcome.failed.len(),
        retried.outcome.fleet.records.len(),
        retried.outcome.failed.len(),
        retried.outcome.reliability.recovered_requests,
        retried.outcome.reliability.re_prefilled_tokens,
        breakered.outcome.reliability.breaker_opens,
        retried.outcome.reliability.crashes
    );
    if smoke {
        // Machine-readable, wall-clock-free metrics for the bench gate.
        println!(
            "BENCH_SMOKE_JSON {{\"benchmark\":\"reliability\",\"completed_fail_fast\":{},\"failed_fail_fast\":{},\"completed_retry\":{},\"failed_retry\":{},\"failed_attempts\":{},\"retries_scheduled\":{},\"recovered\":{},\"re_prefilled_tokens\":{},\"breaker_opens\":{},\"crashes\":{}}}",
            fail_fast.outcome.fleet.records.len(),
            fail_fast.outcome.failed.len(),
            retried.outcome.fleet.records.len(),
            retried.outcome.failed.len(),
            retried.outcome.reliability.failed_attempts,
            retried.outcome.reliability.retries_scheduled,
            retried.outcome.reliability.recovered_requests,
            retried.outcome.reliability.re_prefilled_tokens,
            breakered.outcome.reliability.breaker_opens,
            retried.outcome.reliability.crashes
        );
    }

    let path = write_figure_csv("reliability.csv", &csv);
    println!("\nCSV written to {}", path.display());
}
