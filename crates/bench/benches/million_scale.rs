//! Million-request fleet benchmark: the streamed reliable path at scale.
//!
//! The simulator's north star is replaying million-request traces at
//! hardware speed, and this bench is where that claim is measured end to
//! end: a ShareGPT Poisson trace is generated **lazily** by a
//! [`TraceStream`] and fed to `run_reliable_stream` over an 8-replica
//! LoongServe fleet behind JSQ routing, with era segments on the bounded
//! worker pool. A staggered periodic crash schedule touches every replica,
//! so era boundaries keep flushing the frontend's routing buckets — the
//! [`FleetFootprint`] ledger proves the frontend held O(active +
//! pending-retries) requests, never the whole trace. The run is observed
//! end to end by a 1%-sampling [`TraceRecorder`], whose own ledger proves
//! the observability tier's O(sampled + bins + peak-open) residency bound
//! at the same scale (and whose smoke-mode Perfetto export feeds the
//! `xtask trace-check` CI step).
//!
//! Two kinds of numbers are printed:
//!
//! * **Deterministic** (gated): completions, terminal failures, crash
//!   count, simulated makespan, streamed requests and the peak-resident
//!   high-water. These are simulation-exact and bit-for-bit reproducible
//!   on any host; the smoke gate compares them against
//!   `BENCH_million.json`.
//! * **Report-only**: wall-clock, requests per wall-second and the
//!   process's `VmHWM` resident high-water (Linux only). Wall-clock
//!   speedup from the pooled era execution needs cores — on an N-core
//!   host the pool caps at min(N-1, replicas) workers, so the ≥4× claim
//!   at 8 replicas applies to ≥8-core hosts; single-core CI boxes see
//!   pool overhead only, which is why no wall-clock number is gated.
//!
//! Invocation (harness = false):
//!
//! ```text
//! cargo bench --bench million_scale                      # 1M requests, 8 replicas
//! cargo bench --bench million_scale -- --smoke           # 20k requests, 4 replicas
//! cargo bench --bench million_scale -- --compare-serial  # also run serial, print speedup
//! ```

use loong_bench::banner;
use loongserve::prelude::*;
use std::time::Instant;

/// Offered ShareGPT rate (req/s): ~70% of the 8-replica fleet's sustainable
/// capacity (8 × 42.7 req/s recorded in `BENCH_fleet.json`), so the run is
/// busy but the backlog stays bounded — the regime where the O(active)
/// frontend claim is meaningful.
const RATE: f64 = 240.0;
const COUNT: usize = 1_000_000;
const REPLICAS: usize = 8;
const SMOKE_RATE: f64 = 120.0;
const SMOKE_COUNT: usize = 20_000;
const SMOKE_REPLICAS: usize = 4;
const SEED: u64 = 2026;

/// Every replica crashes once per `period` seconds, staggered so one
/// boundary lands every `period / replicas` seconds fleet-wide. Each
/// boundary flushes the crashing replica's routing bucket into a capped
/// era segment, which is what keeps the frontend bounded.
fn staggered_schedule(replicas: usize, period: f64, horizon: f64) -> FailureSchedule {
    let mut events = Vec::new();
    for r in 0..replicas {
        let offset = period * (r as f64 + 1.0) / replicas as f64;
        let mut at = offset;
        while at < horizon {
            events.push(FailureEvent::new(
                ReplicaId::from(r),
                SimTime::from_secs(at),
                SimTime::from_secs(at + 1.0),
            ));
            at += period;
        }
    }
    FailureSchedule::from_events(events)
}

/// The process's peak resident set (`VmHWM`) in kilobytes, if the host
/// exposes `/proc/self/status`. Report-only: RSS is never bit-for-bit
/// reproducible across hosts, unlike the [`FleetFootprint`] ledger.
fn vm_hwm_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

struct Run {
    wall_s: f64,
    outcome: ReliableFleetOutcome,
    footprint: FleetFootprint,
    recorder: Option<TraceRecorder>,
}

fn run_streamed(
    count: usize,
    rate: f64,
    replicas: usize,
    crash_period: f64,
    parallel: bool,
    traced: bool,
) -> Run {
    // Arrivals end around count/rate; pad the crash horizon past the drain
    // tail so late eras keep flushing too.
    let horizon = count as f64 / rate + 200.0;
    let schedule = staggered_schedule(replicas, crash_period, horizon);
    let rel = ReliabilityConfig::new(schedule)
        .with_retry(RetryPolicy::exponential(3, 0.25))
        .with_sla_window(60.0);
    let mut config = FleetConfig::paper_fleet(
        SystemKind::LoongServe,
        replicas,
        RouterPolicy::JoinShortestQueue,
    );
    config.parallel = parallel;
    let mut fleet = FleetEngine::new(config);
    let stream = TraceStream::dataset(
        DatasetKind::ShareGpt,
        ArrivalProcess::Poisson { rate },
        count,
        &mut SimRng::seed(SEED),
    );
    let start = Instant::now();
    let (outcome, footprint, recorder) = if traced {
        // The default config: 1% deterministic span sampling, always-on
        // per-replica timeseries. Tracing is bit-for-bit inert (pinned by
        // tests/observability_properties.rs), so the gated metrics below
        // are identical with or without the recorder.
        let mut rec = TraceRecorder::new(TraceConfig::default());
        let (outcome, footprint) = fleet.run_reliable_stream_traced(stream, &rel, &mut rec);
        (outcome, footprint, Some(rec))
    } else {
        let (outcome, footprint) = fleet.run_reliable_stream(stream, &rel);
        (outcome, footprint, None)
    };
    let wall_s = start.elapsed().as_secs_f64();
    assert_eq!(
        outcome.total_requests(),
        count,
        "exactly-once accounting must hold at scale"
    );
    Run {
        wall_s,
        outcome,
        footprint,
        recorder,
    }
}

/// The recorder's residency proof at scale: memory is O(sampled + bins +
/// peak-open), never O(trace). Asserted against the streamed count so a
/// regression that starts retaining unsampled state fails loudly.
fn assert_recorder_bounded(recorder: &TraceRecorder, streamed: usize) {
    let ledger = recorder.ledger();
    assert_eq!(ledger.open_requests, 0, "finalize must close every span");
    assert_eq!(
        ledger.spans_dropped, 0,
        "the default span cap must clear the 1M regime"
    );
    let sampled_share = ledger.sampled_requests as f64 / streamed.max(1) as f64;
    assert!(
        (0.005..=0.02).contains(&sampled_share),
        "1% sampling drifted: {} of {streamed} sampled",
        ledger.sampled_requests
    );
    assert!(
        ledger.spans_recorded <= 64 * ledger.sampled_requests,
        "spans must stay proportional to the sampled set ({} spans, {} sampled)",
        ledger.spans_recorded,
        ledger.sampled_requests
    );
    assert!(
        (ledger.peak_open_requests as usize) < streamed / 20,
        "open-request state must track the active window, not the trace \
         (peak {} vs {streamed} streamed)",
        ledger.peak_open_requests
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let compare_serial = args.iter().any(|a| a == "--compare-serial");
    let (count, rate, replicas, crash_period) = if smoke {
        (SMOKE_COUNT, SMOKE_RATE, SMOKE_REPLICAS, 30.0)
    } else {
        (COUNT, RATE, REPLICAS, 120.0)
    };

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    banner(&format!(
        "Million-scale fleet — ShareGPT @ {rate} req/s, {count} requests streamed, \
         {replicas} LoongServe replicas, JSQ router, staggered crashes every {crash_period}s, \
         pooled eras on {cores} core(s){}",
        if smoke { " (smoke)" } else { "" }
    ));

    let run = run_streamed(count, rate, replicas, crash_period, true, true);
    let crashes = run.outcome.reliability.crashes;
    let makespan_s = run.outcome.fleet.sim_time.as_secs();
    let completed = run.outcome.fleet.records.len();
    let failed = run.outcome.failed.len();
    let resident_share =
        run.footprint.peak_resident_requests as f64 / run.footprint.streamed_requests.max(1) as f64;

    println!(
        "{:>10} {:>9} {:>8} {:>8} {:>11} {:>10} {:>13} {:>9}",
        "streamed",
        "completed",
        "failed",
        "crashes",
        "makespan_s",
        "peak_res",
        "res_share",
        "wall_s"
    );
    println!(
        "{:>10} {:>9} {:>8} {:>8} {:>11.1} {:>10} {:>12.2}% {:>9.2}",
        run.footprint.streamed_requests,
        completed,
        failed,
        crashes,
        makespan_s,
        run.footprint.peak_resident_requests,
        resident_share * 100.0,
        run.wall_s
    );
    println!(
        "report-only: {:.0} requests/wall-second{}",
        count as f64 / run.wall_s.max(1e-9),
        match vm_hwm_kb() {
            Some(kb) => format!(", VmHWM {:.1} MiB", kb as f64 / 1024.0),
            None => String::new(),
        }
    );

    // The whole run was observed by a 1%-sampling recorder; prove its
    // residency bound and surface the ledger next to the footprint.
    let recorder = run.recorder.as_ref().expect("the main run is traced");
    assert_recorder_bounded(recorder, run.footprint.streamed_requests);
    let ledger = recorder.ledger();
    println!(
        "trace ledger: {} sampled of {} seen, {} spans, {} instants, \
         {} series bins, peak {} open",
        ledger.sampled_requests,
        ledger.requests_seen,
        ledger.spans_recorded,
        ledger.instants_recorded,
        ledger.series_bins,
        ledger.peak_open_requests
    );

    // The line CI greps for in the million-scale smoke step.
    println!(
        "MILLION_SCALE streamed={} peak_resident={} failed_terminal={}",
        run.footprint.streamed_requests, run.footprint.peak_resident_requests, failed
    );

    if smoke {
        // Machine-readable, wall-clock-free metrics for the bench gate
        // (`cargo run -p xtask -- bench-gate BENCH_million.json`).
        println!(
            "BENCH_SMOKE_JSON {{\"benchmark\":\"million_scale\",\"streamed\":{},\"completed\":{},\"failed\":{},\"crashes\":{},\"makespan_s\":{:.3},\"peak_resident\":{}}}",
            run.footprint.streamed_requests, completed, failed, crashes, makespan_s,
            run.footprint.peak_resident_requests
        );
        // Export the sampled spans for `xtask trace-check` (the ci.sh
        // step that cross-validates the document against this ledger).
        // Anchored to the workspace root: cargo bench runs with the
        // package directory as CWD.
        let out_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target");
        std::fs::create_dir_all(&out_dir).expect("create target/");
        let path = out_dir.join("million_scale.perfetto.json");
        std::fs::write(&path, perfetto_json(recorder)).expect("write perfetto json");
        println!("wrote {}", path.display());
    }

    if compare_serial {
        let serial = run_streamed(count, rate, replicas, crash_period, false, false);
        assert_eq!(serial.outcome.fleet.records.len(), completed);
        assert_eq!(serial.outcome.failed.len(), failed);
        println!(
            "serial wall_s={:.2} pooled wall_s={:.2} speedup={:.2} (cores={cores}; \
             expect ≥4x at 8 replicas only on ≥8-core hosts)",
            serial.wall_s,
            run.wall_s,
            serial.wall_s / run.wall_s.max(1e-9)
        );
    }
}
