//! Prefix-cache benchmark: multi-turn KV reuse vs full re-prefill.
//!
//! Replays a multi-turn ShareGPT trace (strictly-growing per-conversation
//! prompts, geometric round counts, exponential think times) through the
//! LoongServe system twice — prefix cache off and on — and reports the
//! reuse the tier extracts: hit rate, adopted tokens, total prefilled
//! prompt tokens (strictly smaller with the cache), predicted prefill
//! seconds saved, and the resulting makespan. Outcome equivalence (same
//! completed set, same per-request outputs) is asserted inline: the cache
//! must change *work*, never *results*.
//!
//! Invocation (harness = false):
//!
//! ```text
//! cargo bench --bench prefix_cache              # 400-conversation trace
//! cargo bench --bench prefix_cache -- --smoke   # 100-conversation trace
//! ```
//!
//! The smoke mode additionally emits one `BENCH_SMOKE_JSON` line of
//! deterministic (wall-clock-free) metrics; CI feeds it to
//! `cargo run -p xtask -- bench-gate BENCH_prefix.json`, which compares it
//! against the reference checked in at the repository root.

use loong_bench::{banner, write_figure_csv};
use loongserve::prelude::*;
use std::time::Instant;

const CONVERSATIONS: usize = 400;
const SMOKE_CONVERSATIONS: usize = 100;
const CONV_RATE: f64 = 1.5;
const SEED: u64 = 2027;

struct Sample {
    label: &'static str,
    wall_s: f64,
    makespan_s: f64,
    completed: usize,
    unfinished: usize,
    prefilled_tokens: u64,
    cache: CacheStats,
}

fn run_once(label: &'static str, trace: &Trace, cache: bool) -> Sample {
    let mut system = SystemUnderTest::paper_single_node(SystemKind::LoongServe);
    if cache {
        system = system.with_prefix_cache(PrefixCacheConfig::default());
    }
    let mut engine = system.build_engine(Some(trace));
    let start = Instant::now();
    let outcome = engine.run(trace);
    let wall_s = start.elapsed().as_secs_f64();
    let summary = RunSummary::from_records(
        label,
        &trace.label,
        CONV_RATE,
        &outcome.records,
        &SloSpec::default_for_lwm(),
    );
    Sample {
        label,
        wall_s,
        makespan_s: summary.makespan_s,
        completed: summary.completed,
        unfinished: outcome.unfinished,
        prefilled_tokens: outcome.prefilled_tokens,
        cache: outcome.cache,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let conversations = if smoke {
        SMOKE_CONVERSATIONS
    } else {
        CONVERSATIONS
    };

    banner(&format!(
        "Prefix cache — multi-turn ShareGPT, {conversations} conversations @ \
         {CONV_RATE} conv/s, LoongServe, 8 GPUs TP=2{}",
        if smoke { " (smoke)" } else { "" }
    ));

    let mut rng = SimRng::seed(SEED);
    let trace = Trace::generate_multi_turn(
        DatasetKind::ShareGpt,
        &MultiTurnProfile::sharegpt(),
        ArrivalProcess::Poisson { rate: CONV_RATE },
        conversations,
        &mut rng,
    );
    println!(
        "trace: {} requests across {conversations} conversations, {} prompt tokens total",
        trace.len(),
        trace.stats().total_input_tokens
    );

    let off = run_once("cache-off", &trace, false);
    let on = run_once("cache-on", &trace, true);

    // Reuse correctness, asserted on every bench run: identical service,
    // strictly less prefill work, and exact token conservation.
    assert_eq!(off.completed, on.completed, "completed sets must agree");
    assert_eq!(off.unfinished, 0, "cache-off run must drain");
    assert_eq!(on.unfinished, 0, "cache-on run must drain");
    assert!(on.cache.hits > 0, "multi-turn trace must hit the cache");
    assert!(
        on.prefilled_tokens < off.prefilled_tokens,
        "cache must strictly reduce prefilled tokens"
    );
    assert_eq!(
        on.prefilled_tokens + on.cache.reused_tokens,
        off.prefilled_tokens,
        "every prompt token is prefilled or adopted exactly once"
    );

    let mut csv = String::from(
        "cache,wall_s,makespan_s,completed,prefilled_tokens,hits,lookups,reused_tokens,saved_prefill_s,evicted_tokens\n",
    );
    println!(
        "{:>10} {:>8} {:>11} {:>10} {:>17} {:>9} {:>14} {:>15} {:>14}",
        "cache",
        "wall_s",
        "makespan_s",
        "completed",
        "prefilled_tokens",
        "hit_rate",
        "reused_tokens",
        "saved_prefill_s",
        "evicted_tokens"
    );
    for s in [&off, &on] {
        println!(
            "{:>10} {:>8.3} {:>11.1} {:>10} {:>17} {:>9.3} {:>14} {:>15.3} {:>14}",
            s.label,
            s.wall_s,
            s.makespan_s,
            s.completed,
            s.prefilled_tokens,
            s.cache.hit_rate(),
            s.cache.reused_tokens,
            s.cache.saved_prefill_s,
            s.cache.evicted_tokens
        );
        csv.push_str(&format!(
            "{},{:.6},{:.3},{},{},{},{},{},{:.4},{}\n",
            s.label,
            s.wall_s,
            s.makespan_s,
            s.completed,
            s.prefilled_tokens,
            s.cache.hits,
            s.cache.lookups,
            s.cache.reused_tokens,
            s.cache.saved_prefill_s,
            s.cache.evicted_tokens
        ));
    }

    // The line CI greps for in the prefix smoke step.
    println!(
        "PREFIX_CACHE completed={} unfinished={} hit_rate={:.3} reused_tokens={} \
         prefilled_on={} prefilled_off={} makespan_on_s={:.1} makespan_off_s={:.1}",
        on.completed,
        on.unfinished,
        on.cache.hit_rate(),
        on.cache.reused_tokens,
        on.prefilled_tokens,
        off.prefilled_tokens,
        on.makespan_s,
        off.makespan_s
    );
    if smoke {
        // Machine-readable, wall-clock-free metrics for the bench gate.
        println!(
            "BENCH_SMOKE_JSON {{\"benchmark\":\"prefix_cache\",\"completed\":{},\"unfinished\":{},\"hits\":{},\"lookups\":{},\"reused_tokens\":{},\"prefilled_tokens_on\":{},\"prefilled_tokens_off\":{},\"evicted_tokens\":{}}}",
            on.completed,
            on.unfinished,
            on.cache.hits,
            on.cache.lookups,
            on.cache.reused_tokens,
            on.prefilled_tokens,
            off.prefilled_tokens,
            on.cache.evicted_tokens
        );
    }

    let path = write_figure_csv("prefix_cache.csv", &csv);
    println!("\nCSV written to {}", path.display());
}
