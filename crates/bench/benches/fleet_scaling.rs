//! Fleet-scaling benchmark: trace throughput as replicas are added.
//!
//! The fleet tier's reason to exist is horizontal scaling: N independent
//! LoongServe replicas behind the cluster router should serve an
//! overloaded trace ~N× faster than one replica. This bench runs the same
//! Poisson ShareGPT mix — offered well above single-replica capacity, so
//! every fleet size is work-bound — through 1, 2 and 4 replicas under
//! round-robin routing and reports **trace throughput**: completed
//! requests per simulated second of fleet makespan (earliest arrival to
//! latest completion across replicas). Near-linear speedup (≥1.8× at 2,
//! ≥3.2× at 4) is the acceptance bar; sub-linear results point at routing
//! imbalance, since the replicas themselves share nothing.
//!
//! Invocation (harness = false):
//!
//! ```text
//! cargo bench --bench fleet_scaling              # 1, 2, 4 and 8 replicas
//! cargo bench --bench fleet_scaling -- --smoke   # 1 and 2, smaller trace
//! ```
//!
//! The million-request streamed regime (crash-flushed frontend, bounded
//! memory) lives in `cargo bench --bench million_scale`, gated by
//! `BENCH_million.json`.
//!
//! Reference numbers for the current tree are checked in as
//! `BENCH_fleet.json` at the repository root.

use loong_bench::{banner, write_figure_csv};
use loongserve::prelude::*;
use std::time::Instant;

/// Offered ShareGPT rate (req/s): ~6× one replica's sustainable rate
/// (42.7 req/s recorded in `BENCH_fleet.json`), so even the 4-replica
/// fleet stays saturated and the comparison measures capacity, not
/// arrival spacing.
const RATE: f64 = 240.0;
const COUNT: usize = 9600;
const SMOKE_COUNT: usize = 800;
const SEED: u64 = 2025;

struct Sample {
    replicas: usize,
    wall_s: f64,
    makespan_s: f64,
    completed: usize,
    throughput_rps: f64,
    imbalance: f64,
}

fn run_fleet(replicas: usize, count: usize) -> Sample {
    let trace = WorkloadSpec::Dataset(DatasetKind::ShareGpt).generate(RATE, count, SEED);
    let mut config =
        FleetConfig::paper_fleet(SystemKind::LoongServe, replicas, RouterPolicy::RoundRobin);
    config.parallel = true;
    let mut fleet = FleetEngine::new(config);
    let start = Instant::now();
    let outcome = fleet.run(&trace);
    let wall_s = start.elapsed().as_secs_f64();
    let summary = outcome.summary(
        "LoongServe fleet",
        "ShareGPT",
        RATE,
        &SloSpec::default_for_lwm(),
    );
    Sample {
        replicas,
        wall_s,
        makespan_s: summary.fleet.makespan_s,
        completed: summary.fleet.completed,
        throughput_rps: summary.fleet.throughput_rps,
        imbalance: summary.completion_imbalance(),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (sizes, count): (&[usize], usize) = if smoke {
        (&[1, 2], SMOKE_COUNT)
    } else {
        (&[1, 2, 4, 8], COUNT)
    };

    banner(&format!(
        "Fleet scaling — ShareGPT @ {RATE} req/s, {count} requests, round-robin router, \
         LoongServe replicas of 8 GPUs TP=2{}",
        if smoke { " (smoke)" } else { "" }
    ));

    let mut csv =
        String::from("replicas,wall_s,makespan_s,completed,throughput_rps,speedup,imbalance\n");
    println!(
        "{:>8} {:>9} {:>11} {:>10} {:>15} {:>8} {:>10}",
        "replicas", "wall_s", "makespan_s", "completed", "throughput_rps", "speedup", "imbalance"
    );
    let mut base_throughput = None;
    let mut samples: Vec<Sample> = Vec::new();
    for &replicas in sizes {
        let s = run_fleet(replicas, count);
        let base = *base_throughput.get_or_insert(s.throughput_rps);
        let speedup = s.throughput_rps / base;
        println!(
            "{:>8} {:>9.3} {:>11.1} {:>10} {:>15.2} {:>8.2} {:>10.3}",
            s.replicas, s.wall_s, s.makespan_s, s.completed, s.throughput_rps, speedup, s.imbalance
        );
        // The line CI greps for in the fleet perf smoke step.
        println!(
            "FLEET_SCALING replicas={} trace_throughput_rps={:.2} speedup_vs_1={:.2}",
            s.replicas, s.throughput_rps, speedup
        );
        csv.push_str(&format!(
            "{},{:.6},{:.3},{},{:.3},{:.3},{:.3}\n",
            s.replicas, s.wall_s, s.makespan_s, s.completed, s.throughput_rps, speedup, s.imbalance
        ));
        samples.push(s);
    }
    if smoke {
        // Machine-readable, wall-clock-free metrics for the bench gate
        // (`cargo run -p xtask -- bench-gate BENCH_fleet.json`). Makespans
        // are simulated seconds, so the 2-replica speedup is deterministic.
        let one = &samples[0];
        let two = &samples[1];
        println!(
            "BENCH_SMOKE_JSON {{\"benchmark\":\"fleet_scaling\",\"completed\":{},\"makespan_1_s\":{:.3},\"makespan_2_s\":{:.3},\"speedup_2\":{:.4}}}",
            one.completed + two.completed,
            one.makespan_s,
            two.makespan_s,
            one.makespan_s / two.makespan_s
        );
    }

    let path = write_figure_csv("fleet_scaling.csv", &csv);
    println!("\nCSV written to {}", path.display());
}
