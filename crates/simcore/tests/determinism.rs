//! Seeded-RNG determinism: the foundation for every reproducible experiment
//! in the workspace.
//!
//! Each test constructs two independent generators from the same seed and
//! checks they agree bit-for-bit (or exactly, for derived draws) across a
//! long stream. If any of these fail, no figure-reproduction bench or
//! property suite in the repository can be trusted to reproduce.

use loong_simcore::distributions::{
    standard_normal, Empirical, Exponential, LogNormal, LogUniform, Zipf,
};
use loong_simcore::rng::SimRng;
use rand::{Rng, RngCore};

#[test]
fn raw_stream_is_identical_across_runs() {
    let mut a = SimRng::seed(0xDEC0DE);
    let mut b = SimRng::seed(0xDEC0DE);
    for i in 0..10_000 {
        assert_eq!(a.next_u64(), b.next_u64(), "streams diverged at draw {i}");
    }
}

#[test]
fn gen_draws_are_identical_across_runs() {
    let mut a = SimRng::seed(7);
    let mut b = SimRng::seed(7);
    for _ in 0..1_000 {
        let (xa, xb): (f64, f64) = (a.gen(), b.gen());
        assert_eq!(xa.to_bits(), xb.to_bits());
        let (na, nb): (u64, u64) = (a.gen_range(0..1_000_000), b.gen_range(0..1_000_000));
        assert_eq!(na, nb);
    }
}

#[test]
fn forked_substreams_are_identical_across_runs() {
    let mut a = SimRng::seed(99);
    let mut b = SimRng::seed(99);
    for label in ["arrivals", "datasets", "tie-breaks"] {
        let mut fa = a.fork(label);
        let mut fb = b.fork(label);
        for _ in 0..256 {
            assert_eq!(fa.next_u64(), fb.next_u64(), "fork `{label}` diverged");
        }
    }
}

#[test]
fn distribution_draws_are_identical_across_runs() {
    let exp = Exponential::new(0.25);
    let zipf = Zipf::new(64, 1.1);
    let log_uniform = LogUniform::new(100.0, 100_000.0);
    let log_normal = LogNormal::new(5.0, 1.5, 4.0, 2300.0);
    let empirical = Empirical::new(vec![("a", 1.0), ("b", 2.0), ("c", 0.5)]);

    let mut a = SimRng::seed(0xBEEF);
    let mut b = SimRng::seed(0xBEEF);
    for _ in 0..1_000 {
        assert_eq!(exp.sample(&mut a).to_bits(), exp.sample(&mut b).to_bits());
        assert_eq!(zipf.sample(&mut a), zipf.sample(&mut b));
        assert_eq!(
            log_uniform.sample(&mut a).to_bits(),
            log_uniform.sample(&mut b).to_bits()
        );
        assert_eq!(
            log_normal.sample(&mut a).to_bits(),
            log_normal.sample(&mut b).to_bits()
        );
        assert_eq!(empirical.sample(&mut a), empirical.sample(&mut b));
        assert_eq!(
            standard_normal(&mut a).to_bits(),
            standard_normal(&mut b).to_bits()
        );
    }
}

#[test]
fn different_seeds_give_different_distribution_draws() {
    let log_uniform = LogUniform::new(100.0, 100_000.0);
    let mut a = SimRng::seed(1);
    let mut b = SimRng::seed(2);
    let same = (0..64)
        .filter(|_| log_uniform.sample(&mut a).to_bits() == log_uniform.sample(&mut b).to_bits())
        .count();
    assert!(
        same < 4,
        "differently-seeded draws should diverge ({same}/64 equal)"
    );
}
