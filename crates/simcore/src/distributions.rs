//! Samplers used by workload generation.
//!
//! The paper's evaluation samples request lengths from real datasets
//! (ShareGPT, L-Eval, LV-Eval) and generates arrivals from a Poisson
//! process; the ablation in Figure 12 additionally reshapes the length
//! distribution with Zipf exponents 1.0/1.2/1.4. This module provides the
//! deterministic samplers backing those generators:
//!
//! * [`Exponential`] — inter-arrival times of a Poisson process,
//! * [`Zipf`] — ranked discrete distribution with configurable exponent,
//! * [`LogUniform`] — lengths spread uniformly in log-space between bounds,
//! * [`Empirical`] — weighted mixture over explicit (value, weight) bins,
//! * [`LogNormal`] — heavy-tailed conversational length model.

use crate::rng::SimRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Exponential distribution with rate `lambda` (events per second).
///
/// Sampling inter-arrival gaps from `Exponential::new(rate)` produces a
/// Poisson arrival process with mean `rate` requests per second.
///
/// # Examples
///
/// ```
/// use loong_simcore::distributions::Exponential;
/// use loong_simcore::rng::SimRng;
///
/// let mut rng = SimRng::seed(1);
/// let exp = Exponential::new(2.0);
/// let gap = exp.sample(&mut rng);
/// assert!(gap >= 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates an exponential distribution with rate `lambda > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not finite and positive.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "lambda must be positive, got {lambda}"
        );
        Exponential { lambda }
    }

    /// The rate parameter (events per second).
    pub fn rate(&self) -> f64 {
        self.lambda
    }

    /// The mean inter-arrival gap in seconds.
    pub fn mean(&self) -> f64 {
        1.0 / self.lambda
    }

    /// Draws one inter-arrival gap.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        // Inverse-CDF sampling; `1 - u` avoids ln(0).
        let u: f64 = rng.gen::<f64>();
        -(1.0 - u).ln() / self.lambda
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `s`.
///
/// Rank `k` has probability proportional to `k^-s`. The ablation of
/// Figure 12 samples dataset *buckets* by Zipf rank to skew the mixture
/// towards shorter or longer requests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Zipf {
    n: usize,
    exponent: f64,
    /// Cumulative probabilities for inverse-CDF sampling.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n >= 1` ranks with exponent `s >= 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative/NaN.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "Zipf needs at least one rank");
        assert!(
            s.is_finite() && s >= 0.0,
            "Zipf exponent must be non-negative, got {s}"
        );
        let weights: Vec<f64> = (1..=n).map(|k| (k as f64).powf(-s)).collect();
        let total: f64 = weights.iter().sum();
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            cdf.push(acc);
        }
        // Guard against floating point drift so the last bucket always catches.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf {
            n,
            exponent: s,
            cdf,
        }
    }

    /// The number of ranks.
    pub fn ranks(&self) -> usize {
        self.n
    }

    /// The exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Probability of rank `k` (1-based).
    pub fn pmf(&self, k: usize) -> f64 {
        assert!(
            (1..=self.n).contains(&k),
            "rank {k} out of range 1..={}",
            self.n
        );
        let lo = if k == 1 { 0.0 } else { self.cdf[k - 2] };
        self.cdf[k - 1] - lo
    }

    /// Draws a rank in `1..=n`.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u: f64 = rng.gen::<f64>();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf has no NaN"))
        {
            Ok(i) => i + 1,
            Err(i) => (i + 1).min(self.n),
        }
    }
}

/// Log-uniform distribution over `[lo, hi]`.
///
/// Used to spread sequence lengths across several orders of magnitude, as in
/// the L-Eval (2.7K–210K) and LV-Eval (15K–497K) token ranges.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogUniform {
    lo: f64,
    hi: f64,
}

impl LogUniform {
    /// Creates a log-uniform distribution over `[lo, hi]` with `0 < lo <= hi`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not positive finite or `lo > hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo > 0.0 && lo <= hi,
            "invalid LogUniform bounds [{lo}, {hi}]"
        );
        LogUniform { lo, hi }
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Draws one value in `[lo, hi]`.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        if self.lo == self.hi {
            return self.lo;
        }
        let u: f64 = rng.gen::<f64>();
        (self.lo.ln() + u * (self.hi.ln() - self.lo.ln())).exp()
    }
}

/// Log-normal distribution parameterised by the ln-space mean and standard
/// deviation, truncated to `[min, max]` by resampling.
///
/// ShareGPT-style conversational traffic is well described by a log-normal
/// body with a hard cap at the model's (old) context window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
    min: f64,
    max: f64,
}

impl LogNormal {
    /// Creates a truncated log-normal distribution.
    ///
    /// # Panics
    ///
    /// Panics if `sigma < 0`, bounds are non-positive, or `min > max`.
    pub fn new(mu: f64, sigma: f64, min: f64, max: f64) -> Self {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "sigma must be non-negative"
        );
        assert!(
            min > 0.0 && min <= max,
            "invalid truncation bounds [{min}, {max}]"
        );
        LogNormal {
            mu,
            sigma,
            min,
            max,
        }
    }

    /// Draws one value, clamped to the truncation range after at most a few
    /// resampling attempts.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        for _ in 0..16 {
            let z = standard_normal(rng);
            let x = (self.mu + self.sigma * z).exp();
            if x >= self.min && x <= self.max {
                return x;
            }
        }
        // Extremely unlikely with sane parameters; clamp as a fallback.
        let z = standard_normal(rng);
        (self.mu + self.sigma * z).exp().clamp(self.min, self.max)
    }
}

/// Draws a standard normal variate using the Box–Muller transform.
pub fn standard_normal(rng: &mut SimRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A discrete distribution over explicit `(value, weight)` bins.
///
/// Used for dataset mixtures (e.g. the "Mixed" workload samples each source
/// dataset with equal probability) and for empirical output-length tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Empirical<T: Clone> {
    values: Vec<T>,
    cdf: Vec<f64>,
}

impl<T: Clone> Empirical<T> {
    /// Builds an empirical distribution from `(value, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is empty, any weight is negative/NaN, or all weights
    /// are zero.
    pub fn new(bins: Vec<(T, f64)>) -> Self {
        assert!(
            !bins.is_empty(),
            "Empirical distribution needs at least one bin"
        );
        let total: f64 = bins.iter().map(|(_, w)| *w).sum();
        assert!(
            bins.iter().all(|(_, w)| w.is_finite() && *w >= 0.0) && total > 0.0,
            "Empirical weights must be non-negative with positive sum"
        );
        let mut values = Vec::with_capacity(bins.len());
        let mut cdf = Vec::with_capacity(bins.len());
        let mut acc = 0.0;
        for (v, w) in bins {
            acc += w / total;
            values.push(v);
            cdf.push(acc);
        }
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Empirical { values, cdf }
    }

    /// The number of bins.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns true if the distribution has no bins (never true for a
    /// successfully constructed value).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Draws one bin value.
    pub fn sample(&self, rng: &mut SimRng) -> T {
        let u: f64 = rng.gen::<f64>();
        let idx = match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf has no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.values.len() - 1),
        };
        self.values[idx].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = SimRng::seed(5);
        let exp = Exponential::new(4.0);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| exp.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean was {mean}, expected 0.25");
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let z = Zipf::new(4, 1.2);
        assert!(z.pmf(1) > z.pmf(2));
        assert!(z.pmf(2) > z.pmf(4));
        let total: f64 = (1..=4).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(5, 0.0);
        for k in 1..=5 {
            assert!((z.pmf(k) - 0.2).abs() < 1e-9);
        }
    }

    #[test]
    fn zipf_samples_in_range() {
        let mut rng = SimRng::seed(2);
        let z = Zipf::new(3, 1.0);
        for _ in 0..1000 {
            let k = z.sample(&mut rng);
            assert!((1..=3).contains(&k));
        }
    }

    #[test]
    fn log_uniform_stays_in_bounds() {
        let mut rng = SimRng::seed(3);
        let d = LogUniform::new(100.0, 100_000.0);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((100.0..=100_000.0).contains(&x), "sample {x} out of bounds");
        }
    }

    #[test]
    fn log_uniform_degenerate_bounds() {
        let mut rng = SimRng::seed(3);
        let d = LogUniform::new(42.0, 42.0);
        assert_eq!(d.sample(&mut rng), 42.0);
    }

    #[test]
    fn log_normal_truncation_respected() {
        let mut rng = SimRng::seed(9);
        let d = LogNormal::new(5.0, 1.5, 4.0, 2300.0);
        for _ in 0..2000 {
            let x = d.sample(&mut rng);
            assert!((4.0..=2300.0).contains(&x), "sample {x} escaped truncation");
        }
    }

    #[test]
    fn empirical_respects_weights() {
        let mut rng = SimRng::seed(4);
        let d = Empirical::new(vec![("a", 3.0), ("b", 1.0)]);
        let n = 20_000;
        let a_count = (0..n).filter(|_| d.sample(&mut rng) == "a").count();
        let frac = a_count as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "fraction of 'a' was {frac}");
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn empirical_empty_panics() {
        let _ = Empirical::<u32>::new(vec![]);
    }
}
