//! Dense request table with incrementally maintained phase indices.
//!
//! The serving engine's run loop must build a scheduler view at every
//! scheduling point. Scanning every request ever seen makes each point cost
//! O(all requests) and a whole trace O(N²); [`RequestTable`] makes the view
//! O(active) instead. It is a dense slab indexed by [`RequestId`] whose
//! entries each carry a coarse [`PhaseClass`]; for every class the table
//! maintains an index set ordered by **admission rank** — the order in which
//! requests became visible to the scheduler. Phase transitions move an entry
//! between index sets in O(log n); iterating one class visits exactly the
//! requests in that class, in the same order a full scan over an append-only
//! arrival log would produce. That ordering guarantee is what keeps
//! incremental maintenance bit-for-bit equivalent to the naive rebuild.
//!
//! The payload type is generic: the engine stores its full per-request state
//! (timestamps, fine-grained phase) in `T` and mirrors the coarse class via
//! [`RequestTable::set_class`] on every transition.
//!
//! # Examples
//!
//! ```
//! use loong_simcore::ids::RequestId;
//! use loong_simcore::table::{PhaseClass, RequestTable};
//!
//! let mut table: RequestTable<&'static str> = RequestTable::new();
//! table.insert(RequestId(0), "a");
//! table.insert(RequestId(1), "b");
//! // Nothing is visible until admitted.
//! assert_eq!(table.iter_class(PhaseClass::Pending).count(), 0);
//! table.admit(RequestId(1));
//! table.admit(RequestId(0));
//! // Iteration follows admission order, not id order.
//! let pending: Vec<RequestId> = table.iter_class(PhaseClass::Pending).collect();
//! assert_eq!(pending, vec![RequestId(1), RequestId(0)]);
//! table.set_class(RequestId(1), PhaseClass::InFlight);
//! assert_eq!(table.class_len(PhaseClass::Pending), 1);
//! ```

use crate::ids::RequestId;
use std::collections::BTreeSet;

/// Coarse request phases the engine indexes by.
///
/// The engine keeps its fine-grained phase (chunked-prefill progress,
/// generated-token counts, …) in the table payload; the class only decides
/// which scheduler-view list — if any — the request appears in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseClass {
    /// Waiting for (more) prefill; appears in the pending view.
    Pending,
    /// Decode phase, ready for its next iteration; appears in the decoding
    /// view.
    DecodeReady,
    /// An iteration or migration is executing; appears in no view.
    InFlight,
    /// Evicted to the host-DRAM swap tier; appears in the swapped view and
    /// waits there until memory pressure clears.
    Swapped,
    /// Finished or rejected; appears in no view and never transitions again.
    Done,
}

impl PhaseClass {
    const COUNT: usize = 5;

    fn index(self) -> usize {
        match self {
            PhaseClass::Pending => 0,
            PhaseClass::DecodeReady => 1,
            PhaseClass::InFlight => 2,
            PhaseClass::Swapped => 3,
            PhaseClass::Done => 4,
        }
    }
}

#[derive(Debug, Clone)]
struct Slot<T> {
    payload: T,
    class: PhaseClass,
    /// Admission rank; `u64::MAX` until admitted.
    rank: u64,
    admitted: bool,
}

/// A dense slab of per-request state with intrusive phase-index sets.
///
/// Entries are keyed by `RequestId::index()`, so ids should be dense (the
/// workload generator allocates them sequentially). Sparse ids work but
/// waste slab space.
#[derive(Debug, Clone, Default)]
pub struct RequestTable<T> {
    slots: Vec<Option<Slot<T>>>,
    /// One ordered index per class, keyed by (admission rank, id).
    classes: [BTreeSet<(u64, RequestId)>; PhaseClass::COUNT],
    next_rank: u64,
    len: usize,
}

impl<T> RequestTable<T> {
    /// Creates an empty table.
    pub fn new() -> Self {
        RequestTable {
            slots: Vec::new(),
            classes: Default::default(),
            next_rank: 0,
            len: 0,
        }
    }

    /// Creates an empty table with slab space for ids `0..capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut t = Self::new();
        t.slots.reserve(capacity);
        t
    }

    /// Number of requests in the table.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns true if the table holds no requests.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a request in class [`PhaseClass::Pending`], initially
    /// invisible: it joins the phase indices only once [`Self::admit`]ted.
    ///
    /// # Panics
    ///
    /// Panics if the id is already present.
    pub fn insert(&mut self, id: RequestId, payload: T) {
        let idx = id.index();
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        assert!(self.slots[idx].is_none(), "request {id} inserted twice");
        self.slots[idx] = Some(Slot {
            payload,
            class: PhaseClass::Pending,
            rank: u64::MAX,
            admitted: false,
        });
        self.len += 1;
    }

    /// Makes a request visible to class iteration, assigning it the next
    /// admission rank. Iteration order within every class follows this rank,
    /// so admitting in event order reproduces an append-only arrival log.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown or already admitted.
    pub fn admit(&mut self, id: RequestId) {
        let rank = self.next_rank;
        let slot = self.slot_mut(id);
        assert!(!slot.admitted, "request {id} admitted twice");
        slot.admitted = true;
        slot.rank = rank;
        let class = slot.class;
        self.next_rank += 1;
        self.classes[class.index()].insert((rank, id));
    }

    /// Returns true if the request is present.
    pub fn contains(&self, id: RequestId) -> bool {
        self.slots.get(id.index()).is_some_and(|s| s.is_some())
    }

    /// The payload of `id`, if present.
    pub fn get(&self, id: RequestId) -> Option<&T> {
        self.slots.get(id.index())?.as_ref().map(|s| &s.payload)
    }

    /// Mutable payload of `id`, if present. Class membership is unaffected;
    /// callers that change the logical phase must also call
    /// [`Self::set_class`].
    pub fn get_mut(&mut self, id: RequestId) -> Option<&mut T> {
        self.slots
            .get_mut(id.index())?
            .as_mut()
            .map(|s| &mut s.payload)
    }

    /// The coarse class of `id`, if present.
    pub fn class_of(&self, id: RequestId) -> Option<PhaseClass> {
        self.slots.get(id.index())?.as_ref().map(|s| s.class)
    }

    /// Moves `id` to `class`, updating the phase indices in O(log n).
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown.
    pub fn set_class(&mut self, id: RequestId, class: PhaseClass) {
        let slot = self.slot_mut(id);
        let old = slot.class;
        if old == class {
            return;
        }
        slot.class = class;
        if slot.admitted {
            let rank = slot.rank;
            self.classes[old.index()].remove(&(rank, id));
            self.classes[class.index()].insert((rank, id));
        }
    }

    /// Number of admitted requests currently in `class`.
    pub fn class_len(&self, class: PhaseClass) -> usize {
        self.classes[class.index()].len()
    }

    /// Iterates the admitted requests of `class` in admission order.
    pub fn iter_class(&self, class: PhaseClass) -> impl Iterator<Item = RequestId> + '_ {
        self.classes[class.index()].iter().map(|&(_, id)| id)
    }

    /// Consumes the table, yielding `(id, payload)` in id order.
    pub fn into_entries(self) -> impl Iterator<Item = (RequestId, T)> {
        self.slots
            .into_iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.map(|s| (RequestId::from(i), s.payload)))
    }

    /// Checks the index invariants: every admitted entry appears in exactly
    /// the set of its class, unadmitted entries appear nowhere, and set
    /// sizes add up. Intended for tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut admitted = 0usize;
        for (i, slot) in self.slots.iter().enumerate() {
            let Some(slot) = slot else { continue };
            let id = RequestId::from(i);
            for class_idx in 0..PhaseClass::COUNT {
                let present = self.classes[class_idx].contains(&(slot.rank, id));
                let expected = slot.admitted && class_idx == slot.class.index();
                if present != expected {
                    return Err(format!(
                        "request {id}: class index {class_idx} membership {present}, expected {expected}"
                    ));
                }
            }
            if slot.admitted {
                admitted += 1;
            }
        }
        let indexed: usize = self.classes.iter().map(|s| s.len()).sum();
        if indexed != admitted {
            return Err(format!(
                "phase indices hold {indexed} entries but {admitted} requests are admitted"
            ));
        }
        Ok(())
    }

    fn slot_mut(&mut self, id: RequestId) -> &mut Slot<T> {
        self.slots
            .get_mut(id.index())
            .and_then(|s| s.as_mut())
            .unwrap_or_else(|| panic!("unknown request {id}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with(ids: &[u64]) -> RequestTable<u64> {
        let mut t = RequestTable::new();
        for &i in ids {
            t.insert(RequestId(i), i * 10);
        }
        t
    }

    #[test]
    fn insert_admit_and_lookup() {
        let mut t = table_with(&[0, 1, 2]);
        assert_eq!(t.len(), 3);
        assert!(t.contains(RequestId(1)));
        assert_eq!(t.get(RequestId(2)), Some(&20));
        assert_eq!(t.class_of(RequestId(0)), Some(PhaseClass::Pending));
        // Invisible until admitted.
        assert_eq!(t.class_len(PhaseClass::Pending), 0);
        t.admit(RequestId(0));
        t.admit(RequestId(2));
        assert_eq!(t.class_len(PhaseClass::Pending), 2);
        assert!(t.check_invariants().is_ok());
    }

    #[test]
    fn iteration_follows_admission_order_not_id_order() {
        let mut t = table_with(&[0, 1, 2, 3]);
        for id in [3u64, 0, 2, 1] {
            t.admit(RequestId(id));
        }
        let order: Vec<u64> = t.iter_class(PhaseClass::Pending).map(|r| r.raw()).collect();
        assert_eq!(order, vec![3, 0, 2, 1]);
    }

    #[test]
    fn transitions_move_between_index_sets() {
        let mut t = table_with(&[0, 1]);
        t.admit(RequestId(0));
        t.admit(RequestId(1));
        t.set_class(RequestId(0), PhaseClass::InFlight);
        assert_eq!(t.class_len(PhaseClass::Pending), 1);
        assert_eq!(t.class_len(PhaseClass::InFlight), 1);
        t.set_class(RequestId(0), PhaseClass::DecodeReady);
        t.set_class(RequestId(1), PhaseClass::Done);
        assert_eq!(t.class_len(PhaseClass::Pending), 0);
        assert_eq!(
            t.iter_class(PhaseClass::DecodeReady).collect::<Vec<_>>(),
            vec![RequestId(0)]
        );
        assert!(t.check_invariants().is_ok());
    }

    #[test]
    fn reentering_a_class_keeps_the_original_rank() {
        let mut t = table_with(&[0, 1]);
        t.admit(RequestId(1));
        t.admit(RequestId(0));
        // Request 1 leaves and re-enters pending (chunked prefill does
        // this); it must keep its place ahead of request 0.
        t.set_class(RequestId(1), PhaseClass::InFlight);
        t.set_class(RequestId(1), PhaseClass::Pending);
        let order: Vec<u64> = t.iter_class(PhaseClass::Pending).map(|r| r.raw()).collect();
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn class_changes_before_admission_take_effect_at_admission() {
        let mut t = table_with(&[0]);
        // E.g. a request rejected before its arrival event fires.
        t.set_class(RequestId(0), PhaseClass::Done);
        t.admit(RequestId(0));
        assert_eq!(t.class_len(PhaseClass::Pending), 0);
        assert_eq!(t.class_len(PhaseClass::Done), 1);
        assert!(t.check_invariants().is_ok());
    }

    #[test]
    fn into_entries_yields_id_order() {
        let mut t = RequestTable::new();
        t.insert(RequestId(2), "c");
        t.insert(RequestId(0), "a");
        let entries: Vec<(RequestId, &str)> = t.into_entries().collect();
        assert_eq!(entries, vec![(RequestId(0), "a"), (RequestId(2), "c")]);
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn double_insert_panics() {
        let mut t = table_with(&[0]);
        t.insert(RequestId(0), 9);
    }

    #[test]
    #[should_panic(expected = "unknown request")]
    fn set_class_of_unknown_request_panics() {
        let mut t: RequestTable<u64> = RequestTable::new();
        t.set_class(RequestId(7), PhaseClass::Done);
    }
}
