//! Simulated time.
//!
//! The whole of LoongServe-RS runs on a simulated clock. Time is represented
//! as seconds in an `f64` wrapped in [`SimTime`] (an absolute instant) and
//! [`SimDuration`] (a span). Both types forbid NaN on construction so that
//! they can implement a total order, which the event queue relies on.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulated clock, in seconds since simulation
/// start.
///
/// # Examples
///
/// ```
/// use loong_simcore::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(1.5);
/// assert_eq!(t.as_secs(), 1.5);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimTime(f64);

/// A span of simulated time, in seconds.
///
/// Durations may be zero but never negative or NaN.
#[derive(Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimDuration(f64);

impl SimTime {
    /// The simulation start instant.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates an instant at `secs` seconds since simulation start.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN or negative.
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime must be finite and non-negative, got {secs}"
        );
        SimTime(secs)
    }

    /// Returns the instant as seconds since simulation start.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the instant as milliseconds since simulation start.
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the duration elapsed since `earlier`, saturating at zero if
    /// `earlier` is actually later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration((self.0 - earlier.0).max(0.0))
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            self.0 >= earlier.0,
            "SimTime::since: earlier ({}) is after self ({})",
            earlier.0,
            self.0
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Creates a duration of `secs` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN, infinite or negative.
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimDuration must be finite and non-negative, got {secs}"
        );
        SimDuration(secs)
    }

    /// Creates a duration of `ms` milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        Self::from_secs(ms * 1e-3)
    }

    /// Creates a duration of `us` microseconds.
    pub fn from_micros(us: f64) -> Self {
        Self::from_secs(us * 1e-6)
    }

    /// Returns the duration in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the duration in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the duration in microseconds.
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns true if this duration is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Construction forbids NaN, so `partial_cmp` never fails.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl Eq for SimDuration {}

impl PartialOrd for SimDuration {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimDuration {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("SimDuration is never NaN")
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration::from_secs(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1e-3 {
            write!(f, "{:.1}us", self.as_micros())
        } else if self.0 < 1.0 {
            write!(f, "{:.2}ms", self.as_millis())
        } else {
            write!(f, "{:.3}s", self.0)
        }
    }
}

impl Default for SimTime {
    fn default() -> Self {
        SimTime::ZERO
    }
}

impl Default for SimDuration {
    fn default() -> Self {
        SimDuration::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t0 = SimTime::from_secs(1.0);
        let d = SimDuration::from_millis(250.0);
        let t1 = t0 + d;
        assert_eq!(t1.as_secs(), 1.25);
        assert_eq!((t1 - t0).as_millis(), 250.0);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            SimTime::from_secs(3.0),
            SimTime::from_secs(1.0),
            SimTime::from_secs(2.0),
        ];
        v.sort();
        assert_eq!(v[0].as_secs(), 1.0);
        assert_eq!(v[2].as_secs(), 3.0);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_secs(1.0);
        let late = SimTime::from_secs(2.0);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early).as_secs(), 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs(-1.0);
    }

    #[test]
    fn duration_sum_and_scale() {
        let total: SimDuration = (1..=4).map(|i| SimDuration::from_secs(i as f64)).sum();
        assert_eq!(total.as_secs(), 10.0);
        assert_eq!((total / 2.0).as_secs(), 5.0);
        assert_eq!((total * 0.5).as_secs(), 5.0);
        assert_eq!(total / SimDuration::from_secs(5.0), 2.0);
    }

    #[test]
    fn display_chooses_unit() {
        assert_eq!(format!("{}", SimDuration::from_micros(12.0)), "12.0us");
        assert_eq!(format!("{}", SimDuration::from_millis(12.0)), "12.00ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12.0)), "12.000s");
    }

    #[test]
    fn min_max_helpers() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let da = SimDuration::from_secs(1.0);
        let db = SimDuration::from_secs(2.0);
        assert_eq!(da.max(db), db);
        assert_eq!(da.min(db), da);
    }
}
