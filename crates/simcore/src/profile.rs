//! Wall-clock self-profiling counters for the simulator itself.
//!
//! The simulator's *outputs* live on the sim clock; this module measures
//! the simulator's *throughput* on the host clock: scheduling points
//! executed, events popped, and pool jobs completed per wall-second.
//! Counters are process-global relaxed atomics, bumped unconditionally on
//! the hot paths (traced and untraced runs pay the identical few-ns cost,
//! so self-profiling never skews tracing-overhead comparisons), and read
//! by differencing snapshots:
//!
//! ```
//! use loong_simcore::profile::SelfProfile;
//!
//! let profile = SelfProfile::start();
//! // ... run simulations ...
//! let report = profile.report();
//! assert!(report.wall_s >= 0.0);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

static SCHED_POINTS: AtomicU64 = AtomicU64::new(0);
static EVENTS_POPPED: AtomicU64 = AtomicU64::new(0);
static POOL_JOBS: AtomicU64 = AtomicU64::new(0);

/// Adds `n` executed scheduling points. Called by the engine run loop.
#[inline]
pub fn add_sched_points(n: u64) {
    SCHED_POINTS.fetch_add(n, Ordering::Relaxed);
}

/// Adds `n` popped simulation events. Called by the engine run loop.
#[inline]
pub fn add_events_popped(n: u64) {
    EVENTS_POPPED.fetch_add(n, Ordering::Relaxed);
}

/// Adds `n` completed pool jobs. Called by [`crate::pool::run_indexed`].
#[inline]
pub fn add_pool_jobs(n: u64) {
    POOL_JOBS.fetch_add(n, Ordering::Relaxed);
}

/// A snapshot of the process-global counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProfileCounters {
    /// Scheduling points executed by engine run loops.
    pub sched_points: u64,
    /// Events popped off simulation event queues.
    pub events_popped: u64,
    /// Jobs completed by the fork-join pool.
    pub pool_jobs: u64,
}

impl ProfileCounters {
    /// Reads the current process-global counter values.
    pub fn snapshot() -> Self {
        ProfileCounters {
            sched_points: SCHED_POINTS.load(Ordering::Relaxed),
            events_popped: EVENTS_POPPED.load(Ordering::Relaxed),
            pool_jobs: POOL_JOBS.load(Ordering::Relaxed),
        }
    }

    fn since(self, base: ProfileCounters) -> ProfileCounters {
        ProfileCounters {
            sched_points: self.sched_points.saturating_sub(base.sched_points),
            events_popped: self.events_popped.saturating_sub(base.events_popped),
            pool_jobs: self.pool_jobs.saturating_sub(base.pool_jobs),
        }
    }
}

/// A wall-clock profiling window: snapshot at [`SelfProfile::start`],
/// difference at [`SelfProfile::report`].
#[derive(Debug, Clone, Copy)]
pub struct SelfProfile {
    started: Instant,
    base: ProfileCounters,
}

impl SelfProfile {
    /// Opens a profiling window now.
    pub fn start() -> Self {
        SelfProfile {
            started: Instant::now(),
            base: ProfileCounters::snapshot(),
        }
    }

    /// Closes the window: counter deltas plus wall-clock rates.
    pub fn report(&self) -> ProfileReport {
        let wall_s = self.started.elapsed().as_secs_f64();
        ProfileReport {
            counters: ProfileCounters::snapshot().since(self.base),
            wall_s,
        }
    }
}

/// Counter deltas over a wall-clock window, with derived rates.
#[derive(Debug, Clone, Copy)]
pub struct ProfileReport {
    /// Counter deltas within the window.
    pub counters: ProfileCounters,
    /// Window length in wall-clock seconds.
    pub wall_s: f64,
}

impl ProfileReport {
    fn rate(&self, n: u64) -> f64 {
        if self.wall_s > 0.0 {
            n as f64 / self.wall_s
        } else {
            0.0
        }
    }

    /// Scheduling points per wall-second.
    pub fn sched_points_per_s(&self) -> f64 {
        self.rate(self.counters.sched_points)
    }

    /// Events popped per wall-second.
    pub fn events_per_s(&self) -> f64 {
        self.rate(self.counters.events_popped)
    }

    /// Pool jobs per wall-second.
    pub fn pool_jobs_per_s(&self) -> f64 {
        self.rate(self.counters.pool_jobs)
    }
}

impl std::fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "wall={:.3}s sched_points={} ({:.0}/s) events={} ({:.0}/s) pool_jobs={} ({:.0}/s)",
            self.wall_s,
            self.counters.sched_points,
            self.sched_points_per_s(),
            self.counters.events_popped,
            self.events_per_s(),
            self.counters.pool_jobs,
            self.pool_jobs_per_s()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_difference_the_global_counters() {
        let window = SelfProfile::start();
        add_sched_points(5);
        add_events_popped(12);
        add_pool_jobs(2);
        let report = window.report();
        // Other tests may bump concurrently; deltas are at least ours.
        assert!(report.counters.sched_points >= 5);
        assert!(report.counters.events_popped >= 12);
        assert!(report.counters.pool_jobs >= 2);
        assert!(report.wall_s >= 0.0);
        let rendered = format!("{report}");
        assert!(rendered.contains("sched_points="));
    }

    #[test]
    fn zero_window_rates_are_finite() {
        let report = ProfileReport {
            counters: ProfileCounters::default(),
            wall_s: 0.0,
        };
        assert_eq!(report.events_per_s(), 0.0);
        assert_eq!(report.sched_points_per_s(), 0.0);
        assert_eq!(report.pool_jobs_per_s(), 0.0);
    }
}
