//! Discrete-event simulation core.
//!
//! The serving engine advances a simulated clock by popping timestamped
//! events from an [`EventQueue`]. Two properties matter for correctness:
//!
//! 1. events are delivered in non-decreasing timestamp order, and
//! 2. ties are broken by insertion order (FIFO), so the simulation is
//!    deterministic even when many events share a timestamp (e.g. a batch
//!    of requests arriving in the same Poisson burst).

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A timestamped event carrying an arbitrary payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event<E> {
    /// The simulated instant at which the event fires.
    pub at: SimTime,
    /// Monotone sequence number used for FIFO tie-breaking.
    pub seq: u64,
    /// The event payload.
    pub payload: E,
}

/// Internal heap entry ordered so that `BinaryHeap` (a max-heap) pops the
/// earliest timestamp, then the lowest sequence number.
struct HeapEntry<E> {
    event: Event<E>,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.event.at == other.event.at && self.event.seq == other.event.seq
    }
}

impl<E> Eq for HeapEntry<E> {}

impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse both keys: BinaryHeap is a max-heap but we want the
        // earliest event (and among equals, the earliest insertion) first.
        other
            .event
            .at
            .cmp(&self.event.at)
            .then_with(|| other.event.seq.cmp(&self.event.seq))
    }
}

/// A deterministic priority queue of future events.
///
/// # Examples
///
/// ```
/// use loong_simcore::events::EventQueue;
/// use loong_simcore::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2.0), "late");
/// q.push(SimTime::from_secs(1.0), "early");
/// let first = q.pop().unwrap();
/// assert_eq!(first.payload, "early");
/// assert_eq!(first.at, SimTime::from_secs(1.0));
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulated time: the timestamp of the most recently popped
    /// event (or zero before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns true if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock, which would break
    /// causality.
    pub fn push(&mut self, at: SimTime, payload: E) -> u64 {
        assert!(
            at >= self.now,
            "cannot schedule an event at {at:?} before the current time {:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry {
            event: Event { at, seq, payload },
        });
        seq
    }

    /// Pops the next event and advances the clock to its timestamp.
    pub fn pop(&mut self) -> Option<Event<E>> {
        let entry = self.heap.pop()?;
        debug_assert!(
            entry.event.at >= self.now,
            "event queue violated time order"
        );
        self.now = entry.event.at;
        Some(entry.event)
    }

    /// Returns the timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.event.at)
    }

    /// Removes every pending event, leaving the clock untouched.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Drains all events scheduled at exactly the next timestamp, advancing
    /// the clock once. Useful for coalescing simultaneous arrivals.
    pub fn pop_simultaneous(&mut self) -> Vec<Event<E>> {
        let mut out = Vec::new();
        self.pop_simultaneous_into(&mut out);
        out
    }

    /// Like [`Self::pop_simultaneous`], but clears and fills a caller-owned
    /// buffer so a hot loop can reuse one allocation across scheduling
    /// steps. Returns the number of events delivered.
    pub fn pop_simultaneous_into(&mut self, out: &mut Vec<Event<E>>) -> usize {
        out.clear();
        let Some(first) = self.pop() else {
            return 0;
        };
        let t = first.at;
        out.push(first);
        while self.peek_time() == Some(t) {
            out.push(self.pop().expect("peeked event exists"));
        }
        out.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3.0), 3);
        q.push(SimTime::from_secs(1.0), 1);
        q.push(SimTime::from_secs(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_broken_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1.0);
        for i in 0..10 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5.0));
    }

    #[test]
    #[should_panic(expected = "before the current time")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5.0), ());
        q.pop();
        q.push(SimTime::from_secs(1.0), ());
    }

    #[test]
    fn pop_simultaneous_groups_events() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1.0), "a");
        q.push(SimTime::from_secs(1.0), "b");
        q.push(SimTime::from_secs(2.0), "c");
        let batch = q.pop_simultaneous();
        assert_eq!(batch.len(), 2);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn pop_simultaneous_into_reuses_the_buffer() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1.0), "a");
        q.push(SimTime::from_secs(1.0), "b");
        q.push(SimTime::from_secs(2.0), "c");
        let mut buf = vec![Event {
            at: SimTime::ZERO,
            seq: 0,
            payload: "stale",
        }];
        assert_eq!(q.pop_simultaneous_into(&mut buf), 2);
        assert_eq!(buf.len(), 2, "buffer cleared before refill");
        assert_eq!(buf[0].payload, "a");
        assert_eq!(q.pop_simultaneous_into(&mut buf), 1);
        assert_eq!(buf[0].payload, "c");
        assert_eq!(q.pop_simultaneous_into(&mut buf), 0);
        assert!(buf.is_empty());
    }

    #[test]
    fn peek_does_not_advance_clock() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1.0)));
        assert_eq!(q.now(), SimTime::ZERO);
    }
}
