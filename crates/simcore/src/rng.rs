//! Deterministic random number generation.
//!
//! Every stochastic component of the simulator (arrival processes, dataset
//! samplers, tie-breaking) draws from a [`SimRng`], a small, fast,
//! splittable PRNG based on SplitMix64 seeding a xoshiro256**-style state.
//! Determinism is a hard requirement: given the same seed, every experiment
//! in the repository reproduces bit-for-bit, which the property tests and
//! the figure-reproduction benches rely on.

use rand::{Error, RngCore, SeedableRng};

/// Advances a SplitMix64 state and returns the next 64-bit output.
///
/// SplitMix64 is used both to expand seeds into the main generator state and
/// to derive independent substream seeds in [`SimRng::fork`].
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic, splittable pseudo-random number generator.
///
/// The generator implements [`rand::RngCore`] so it can be used with any
/// distribution from `rand`/`rand_distr`, and adds [`SimRng::fork`] for
/// carving out independent substreams (e.g. one per dataset, one per
/// arrival process) so that adding draws to one component does not perturb
/// another.
///
/// # Examples
///
/// ```
/// use loong_simcore::rng::SimRng;
/// use rand::Rng;
///
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
///
/// // Forked substreams are independent of later draws on the parent.
/// let mut fork = a.fork("arrivals");
/// let x: f64 = fork.gen_range(0.0..1.0);
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // Avoid the all-zero state, which xoshiro cannot escape.
        if s == [0, 0, 0, 0] {
            s = [
                0x1,
                0x9E3779B97F4A7C15,
                0xBF58476D1CE4E5B9,
                0x94D049BB133111EB,
            ];
        }
        SimRng { s }
    }

    /// Derives an independent substream labelled by `label`.
    ///
    /// The substream seed mixes the parent's *current* state with a hash of
    /// the label, so forking the same label twice at different points yields
    /// different streams, while forking from identically-seeded parents in
    /// the same order is fully reproducible.
    pub fn fork(&mut self, label: &str) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mixed = self.next_u64() ^ h;
        SimRng::seed(mixed)
    }

    /// Draws one uniform value in `[0, 1)`.
    ///
    /// Convenience for crates that consume `SimRng` without depending on
    /// `rand` themselves (e.g. thinning acceptance tests in workload
    /// generation). Uses the top 53 bits of one `next_u64` draw, the same
    /// construction `rand`'s `f64` sampling uses.
    pub fn uniform01(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        // xoshiro256** scrambler.
        let result = Self::rotl(self.s[1].wrapping_mul(5), 7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = Self::rotl(self.s[3], 45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for SimRng {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        SimRng::seed(u64::from_le_bytes(seed))
    }
}

impl Default for SimRng {
    /// A generator with a fixed default seed, convenient for examples.
    fn default() -> Self {
        SimRng::seed(0x0001_0000_5EED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(8);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams with different seeds should diverge");
    }

    #[test]
    fn fork_is_reproducible() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(1);
        let mut fa = a.fork("x");
        let mut fb = b.fork("x");
        assert_eq!(fa.next_u64(), fb.next_u64());
    }

    #[test]
    fn fork_labels_differ() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(1);
        let mut fa = a.fork("x");
        let mut fb = b.fork("y");
        assert_ne!(fa.next_u64(), fb.next_u64());
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = SimRng::seed(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_range_stays_in_range() {
        let mut rng = SimRng::seed(11);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&x));
            let n: u64 = rng.gen_range(5..10);
            assert!((5..10).contains(&n));
        }
    }

    #[test]
    fn uniformity_rough_check() {
        let mut rng = SimRng::seed(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!(
            (mean - 0.5).abs() < 0.01,
            "mean of uniform draws was {mean}"
        );
    }
}
