//! Strongly-typed identifiers shared across the workspace.
//!
//! The simulator threads many kinds of small integer identifiers through its
//! data structures (requests, GPUs, instances, parallel groups). Newtype
//! wrappers keep them from being mixed up at compile time and give the
//! debugger readable output.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
        pub struct $name(pub u64);

        impl $name {
            /// Returns the raw numeric value.
            pub fn raw(self) -> u64 {
                self.0
            }

            /// Returns the value as a `usize` index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                $name(v)
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                $name(v as u64)
            }
        }

        // Id-keyed maps serialize with the raw number as the object key.
        impl serde::MapKey for $name {
            fn to_key(&self) -> String {
                self.0.to_string()
            }

            fn parse_key(s: &str) -> Result<Self, serde::DeError> {
                s.parse::<u64>()
                    .map($name)
                    .map_err(|_| serde::DeError::custom(format!("bad id key `{s}`")))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifier of a serving request.
    RequestId,
    "req"
);

define_id!(
    /// Identifier of a physical GPU device in the simulated cluster.
    GpuId,
    "gpu"
);

define_id!(
    /// Identifier of a node (server) in the simulated cluster.
    NodeId,
    "node"
);

define_id!(
    /// Identifier of an elastic instance (a model replica spanning one or
    /// more GPUs under tensor parallelism).
    InstanceId,
    "inst"
);

define_id!(
    /// Identifier of an ESP parallel group (a set of elastic instances
    /// executing one batch with sequence parallelism).
    GroupId,
    "grp"
);

define_id!(
    /// Identifier of a batch formed by a scheduler.
    BatchId,
    "batch"
);

define_id!(
    /// Identifier of a serving replica in a fleet (one full serving engine
    /// with its own cluster node, KV pool and scheduler).
    ReplicaId,
    "replica"
);

define_id!(
    /// Identifier of a multi-turn conversation. Requests sharing a
    /// conversation id form strictly-growing prompt prefixes (each turn's
    /// prompt extends the previous turn's full context), which is what the
    /// prefix-cache tier keys its token-granularity index on.
    ConversationId,
    "conv"
);

/// A monotonically increasing identifier allocator.
///
/// # Examples
///
/// ```
/// use loong_simcore::ids::{IdAllocator, RequestId};
///
/// let mut alloc = IdAllocator::<RequestId>::new();
/// assert_eq!(alloc.next(), RequestId(0));
/// assert_eq!(alloc.next(), RequestId(1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct IdAllocator<T> {
    next: u64,
    _marker: std::marker::PhantomData<T>,
}

impl<T: From<u64>> IdAllocator<T> {
    /// Creates an allocator starting at zero.
    pub fn new() -> Self {
        IdAllocator {
            next: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// Allocates the next identifier.
    ///
    /// Deliberately named like `Iterator::next`; the allocator is not an
    /// iterator (allocation never ends and is never `None`).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> T {
        let id = self.next;
        self.next += 1;
        T::from(id)
    }

    /// The number of identifiers allocated so far.
    pub fn allocated(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_with_prefix() {
        assert_eq!(format!("{}", RequestId(3)), "req3");
        assert_eq!(format!("{:?}", InstanceId(1)), "inst1");
        assert_eq!(format!("{}", GroupId(7)), "grp7");
    }

    #[test]
    fn allocator_is_monotone() {
        let mut alloc = IdAllocator::<BatchId>::new();
        let a = alloc.next();
        let b = alloc.next();
        assert!(b > a);
        assert_eq!(alloc.allocated(), 2);
    }

    #[test]
    fn conversions_roundtrip() {
        let id = GpuId::from(5usize);
        assert_eq!(id.index(), 5);
        assert_eq!(id.raw(), 5);
        assert_eq!(GpuId::from(5u64), id);
    }
}
