//! A bounded, deterministic fork-join worker pool for independent jobs.
//!
//! The fleet runners execute one engine per replica between era boundaries.
//! Those per-replica simulations are pure functions of their inputs, so they
//! can run on any thread in any order — as long as the *results* are put back
//! in job order the outcome is bit-identical to a serial loop. [`run_indexed`]
//! does exactly that: it spawns at most [`worker_cap`] scoped threads that
//! pull job indices from a shared atomic counter, and returns the results in
//! index order.
//!
//! Spawning one OS thread per replica (what the plain fleet used to do) falls
//! over at 100-replica fleets; the pool keeps thread count bounded by the
//! host's parallelism regardless of fleet size.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads the pool will use for `jobs` independent jobs:
/// `min(available_parallelism, jobs)`, and at least 1.
pub fn worker_cap(jobs: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    cores.min(jobs).max(1)
}

/// Runs `jobs` independent jobs on a bounded scoped thread pool and returns
/// their results in job-index order.
///
/// `f(i)` must be a pure function of `i` (plus shared read-only captures):
/// the pool guarantees nothing about which thread runs which index or in
/// what order, only that the returned `Vec` has `f(i)` at position `i`.
/// With one job (or one core) the pool degenerates to a serial loop on the
/// calling thread, so serial and parallel execution are bit-identical by
/// construction.
///
/// Panics in a job are propagated to the caller.
pub fn run_indexed<T, F>(jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    crate::profile::add_pool_jobs(jobs as u64);
    let workers = worker_cap(jobs);
    if workers <= 1 || jobs <= 1 {
        return (0..jobs).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut chunks: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<T>> = (0..jobs).map(|_| None).collect();
    for chunk in &mut chunks {
        for (i, value) in chunk.drain(..) {
            debug_assert!(slots[i].is_none(), "job {i} produced twice");
            slots[i] = Some(value);
        }
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| slot.unwrap_or_else(|| panic!("job {i} never ran")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        let squares = run_indexed(100, |i| i * i);
        assert_eq!(squares, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn zero_and_one_job_work() {
        assert_eq!(run_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, |i| i + 41), vec![41]);
    }

    #[test]
    fn matches_serial_execution_bitwise() {
        // A job whose output depends on per-job seeded randomness: identical
        // regardless of which worker runs it.
        let f = |i: usize| {
            let mut rng = crate::SimRng::seed(0xC0FFEE ^ i as u64);
            (0..50).map(|_| rng.uniform01()).sum::<f64>()
        };
        let parallel = run_indexed(64, f);
        let serial: Vec<f64> = (0..64).map(f).collect();
        assert_eq!(parallel.len(), serial.len());
        for (a, b) in parallel.iter().zip(&serial) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn worker_cap_is_bounded() {
        assert_eq!(worker_cap(0), 1);
        assert_eq!(worker_cap(1), 1);
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        assert_eq!(worker_cap(10_000), cores.min(10_000));
    }
}
