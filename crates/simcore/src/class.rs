//! Traffic service classes.
//!
//! The class is the per-request SLO tag the serving frontend keys on: the
//! elasticity tier's admission controller sheds by class under saturation
//! and per-class reporting scales the base SLO by
//! [`TrafficClass::slo_scale`]. The type lives in the simulation core so
//! both the workload layer (which tags requests) and the metrics layer
//! (whose per-request records carry the class through to reporting) can
//! share it without a dependency cycle.

use serde::{Deserialize, Serialize};

/// The service class a request arrives under.
///
/// Classes order by *strictness*: interactive traffic has the tightest
/// latency expectations and is shed last; best-effort (batch/long-document)
/// traffic tolerates the loosest latency and is shed first when the fleet
/// saturates. The class never changes what a request costs to serve — only
/// how the frontend treats it under overload and which SLO it is judged by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TrafficClass {
    /// Chat-style traffic (ShareGPT-shaped): tight SLO, shed last.
    Interactive,
    /// Multi-turn assistant sessions: intermediate SLO.
    Standard,
    /// Long-document / batch analysis (L-Eval-shaped): loose SLO, shed
    /// first.
    BestEffort,
}

impl TrafficClass {
    /// Every class, in shed order (first element is shed first).
    pub fn all() -> [TrafficClass; 3] {
        [
            TrafficClass::BestEffort,
            TrafficClass::Standard,
            TrafficClass::Interactive,
        ]
    }

    /// Shed priority: lower ranks are shed earlier under saturation.
    pub fn shed_rank(&self) -> u8 {
        match self {
            TrafficClass::BestEffort => 0,
            TrafficClass::Standard => 1,
            TrafficClass::Interactive => 2,
        }
    }

    /// Multiplier applied to the base [`SloSpec`] when judging this class:
    /// interactive requests are held to the base SLO, standard traffic to
    /// 2× and best-effort to 4× — looser classes trade latency for
    /// admission under load.
    ///
    /// [`SloSpec`]: https://docs.rs/loong-metrics
    pub fn slo_scale(&self) -> f64 {
        match self {
            TrafficClass::Interactive => 1.0,
            TrafficClass::Standard => 2.0,
            TrafficClass::BestEffort => 4.0,
        }
    }

    /// The report label.
    pub fn label(&self) -> &'static str {
        match self {
            TrafficClass::Interactive => "interactive",
            TrafficClass::Standard => "standard",
            TrafficClass::BestEffort => "best-effort",
        }
    }
}

impl Default for TrafficClass {
    /// Single-shot requests default to interactive — the class of every
    /// pre-elasticity trace, which keeps existing generators and goldens
    /// unchanged.
    fn default() -> Self {
        TrafficClass::Interactive
    }
}
