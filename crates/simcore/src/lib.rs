//! # loong-simcore
//!
//! Foundation crate for LoongServe-RS: a deterministic discrete-event
//! simulation core used by every other crate in the workspace.
//!
//! The crate provides:
//!
//! * [`time`] — simulated instants and durations,
//! * [`events`] — a deterministic event queue with FIFO tie-breaking,
//! * [`rng`] — a seedable, splittable PRNG so experiments reproduce exactly,
//! * [`distributions`] — the samplers behind workload generation
//!   (Poisson arrivals, Zipf mixtures, log-uniform/log-normal lengths),
//! * [`ids`] — strongly-typed identifiers shared across the workspace,
//! * [`table`] — a dense request table with incrementally maintained
//!   phase indices, the backbone of the engine's O(active) run loop,
//! * [`pool`] — a bounded, deterministic fork-join worker pool used by the
//!   fleet runners to execute independent replica segments in parallel,
//! * [`profile`] — wall-clock self-profiling counters (scheduling points,
//!   events popped, pool jobs per wall-second).
//!
//! # Examples
//!
//! Driving a tiny simulation loop:
//!
//! ```
//! use loong_simcore::events::EventQueue;
//! use loong_simcore::time::{SimDuration, SimTime};
//!
//! #[derive(Debug)]
//! enum Ev { Tick(u32) }
//!
//! let mut queue = EventQueue::new();
//! queue.push(SimTime::from_secs(0.5), Ev::Tick(0));
//! let mut ticks = 0;
//! while let Some(event) = queue.pop() {
//!     let Ev::Tick(n) = event.payload;
//!     ticks += 1;
//!     if n < 3 {
//!         queue.push(event.at + SimDuration::from_secs(0.5), Ev::Tick(n + 1));
//!     }
//! }
//! assert_eq!(ticks, 4);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod class;
pub mod distributions;
pub mod events;
pub mod ids;
pub mod pool;
pub mod profile;
pub mod rng;
pub mod table;
pub mod time;

pub use class::TrafficClass;
pub use distributions::{Empirical, Exponential, LogNormal, LogUniform, Zipf};
pub use events::{Event, EventQueue};
pub use ids::{BatchId, GpuId, GroupId, IdAllocator, InstanceId, NodeId, ReplicaId, RequestId};
pub use pool::{run_indexed, worker_cap};
pub use profile::{ProfileCounters, ProfileReport, SelfProfile};
pub use rng::SimRng;
pub use table::{PhaseClass, RequestTable};
pub use time::{SimDuration, SimTime};
