//! Always-on streaming aggregation: per-replica and fleet-scope
//! timeseries.
//!
//! Unlike spans (sampled, bounded by the recorder cap), series are fed by
//! **every** event and scheduling point but cost only their bins: counters
//! are [`BinnedCounter`]s and gauges keep `(sum, count, max)` per bin, so
//! total memory is `O(makespan / bin_width)` per replica regardless of how
//! many requests stream through — the "bins" half of the recorder's
//! `O(sampled + bins)` residency ledger.

use loong_metrics::{bin_index, BinnedCounter};
use loong_simcore::time::SimTime;

/// A binned gauge: per-bin mean and max of a sampled signal.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSeries {
    bin_width_s: f64,
    sums: Vec<f64>,
    counts: Vec<u64>,
    maxes: Vec<f64>,
}

impl GaugeSeries {
    /// Creates an empty gauge series with the given bin width.
    pub fn new(bin_width_s: f64) -> Self {
        assert!(
            bin_width_s > 0.0 && bin_width_s.is_finite(),
            "bin width must be positive and finite"
        );
        GaugeSeries {
            bin_width_s,
            sums: Vec::new(),
            counts: Vec::new(),
            maxes: Vec::new(),
        }
    }

    /// Records one sample of the signal at time `t`.
    pub fn record(&mut self, t: SimTime, value: f64) {
        let idx = bin_index(self.bin_width_s, t);
        if idx >= self.counts.len() {
            self.sums.resize(idx + 1, 0.0);
            self.counts.resize(idx + 1, 0);
            self.maxes.resize(idx + 1, f64::NEG_INFINITY);
        }
        self.sums[idx] += value;
        self.counts[idx] += 1;
        self.maxes[idx] = self.maxes[idx].max(value);
    }

    /// Number of bins materialised so far.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Mean of the samples in bin `idx` (0.0 for empty bins).
    pub fn mean(&self, idx: usize) -> f64 {
        match self.counts.get(idx) {
            Some(&c) if c > 0 => self.sums[idx] / c as f64,
            _ => 0.0,
        }
    }

    /// Maximum sample in bin `idx` (0.0 for empty bins).
    pub fn max(&self, idx: usize) -> f64 {
        match self.counts.get(idx) {
            Some(&c) if c > 0 => self.maxes[idx],
            _ => 0.0,
        }
    }

    /// Number of samples in bin `idx`.
    pub fn count(&self, idx: usize) -> u64 {
        self.counts.get(idx).copied().unwrap_or(0)
    }

    /// Merges another gauge series into this one, bin-wise. Mirrors
    /// [`BinnedCounter::merge`]: merging an empty series is the identity,
    /// merging into an empty series adopts the other's width, and two
    /// non-empty series must agree on width.
    pub fn merge(&mut self, other: &GaugeSeries) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            self.bin_width_s = other.bin_width_s;
        } else {
            assert!(
                self.bin_width_s == other.bin_width_s,
                "cannot merge gauge series with different bin widths"
            );
        }
        if other.counts.len() > self.counts.len() {
            self.sums.resize(other.counts.len(), 0.0);
            self.counts.resize(other.counts.len(), 0);
            self.maxes.resize(other.counts.len(), f64::NEG_INFINITY);
        }
        for i in 0..other.counts.len() {
            self.sums[i] += other.sums[i];
            self.counts[i] += other.counts[i];
            self.maxes[i] = self.maxes[i].max(other.maxes[i]);
        }
    }
}

/// The per-replica timeseries block.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaSeries {
    /// Mean/max pending queue depth per bin.
    pub queue_depth: GaugeSeries,
    /// Mean/max decode batch size per bin.
    pub batch_size: GaugeSeries,
    /// Mean/max device KV utilisation per bin.
    pub kv_utilization: GaugeSeries,
    /// Completions per bin.
    pub completions: BinnedCounter,
    /// Completions that met their class-scaled SLO, per bin.
    pub slo_hits: BinnedCounter,
    /// Preemptions per bin.
    pub preemptions: BinnedCounter,
    /// Prefix-cache adoptions per bin.
    pub cache_adopts: BinnedCounter,
    /// Prefix-cache entry evictions per bin.
    pub cache_evictions: BinnedCounter,
}

impl ReplicaSeries {
    /// Creates an empty block with the given bin width.
    pub fn new(bin_width_s: f64) -> Self {
        ReplicaSeries {
            queue_depth: GaugeSeries::new(bin_width_s),
            batch_size: GaugeSeries::new(bin_width_s),
            kv_utilization: GaugeSeries::new(bin_width_s),
            completions: BinnedCounter::new(bin_width_s),
            slo_hits: BinnedCounter::new(bin_width_s),
            preemptions: BinnedCounter::new(bin_width_s),
            cache_adopts: BinnedCounter::new(bin_width_s),
            cache_evictions: BinnedCounter::new(bin_width_s),
        }
    }

    /// Merges another block into this one, series-wise.
    pub fn merge(&mut self, other: &ReplicaSeries) {
        self.queue_depth.merge(&other.queue_depth);
        self.batch_size.merge(&other.batch_size);
        self.kv_utilization.merge(&other.kv_utilization);
        self.completions.merge(&other.completions);
        self.slo_hits.merge(&other.slo_hits);
        self.preemptions.merge(&other.preemptions);
        self.cache_adopts.merge(&other.cache_adopts);
        self.cache_evictions.merge(&other.cache_evictions);
    }

    /// Total materialised bins across every series in the block.
    pub fn bins(&self) -> u64 {
        (self.queue_depth.len()
            + self.batch_size.len()
            + self.kv_utilization.len()
            + self.completions.bins().len()
            + self.slo_hits.bins().len()
            + self.preemptions.bins().len()
            + self.cache_adopts.bins().len()
            + self.cache_evictions.bins().len()) as u64
    }

    /// SLO attainment per completion bin (`hits / completions`; 1.0 for
    /// bins with no completions, matching the idle-system convention).
    pub fn attainment_per_bin(&self) -> Vec<f64> {
        let completions = self.completions.bins();
        let hits = self.slo_hits.bins();
        completions
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                if c == 0 {
                    1.0
                } else {
                    hits.get(i).copied().unwrap_or(0) as f64 / c as f64
                }
            })
            .collect()
    }
}

/// Fleet-scope event counters (no single replica owns these).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSeries {
    /// Replica crashes per bin.
    pub crashes: BinnedCounter,
    /// Admission sheds per bin.
    pub sheds: BinnedCounter,
    /// Retries scheduled per bin.
    pub retries: BinnedCounter,
    /// Terminal failures per bin.
    pub failures: BinnedCounter,
}

impl FleetSeries {
    /// Creates an empty block with the given bin width.
    pub fn new(bin_width_s: f64) -> Self {
        FleetSeries {
            crashes: BinnedCounter::new(bin_width_s),
            sheds: BinnedCounter::new(bin_width_s),
            retries: BinnedCounter::new(bin_width_s),
            failures: BinnedCounter::new(bin_width_s),
        }
    }

    /// Merges another block into this one, series-wise.
    pub fn merge(&mut self, other: &FleetSeries) {
        self.crashes.merge(&other.crashes);
        self.sheds.merge(&other.sheds);
        self.retries.merge(&other.retries);
        self.failures.merge(&other.failures);
    }

    /// Total materialised bins across every series in the block.
    pub fn bins(&self) -> u64 {
        (self.crashes.bins().len()
            + self.sheds.bins().len()
            + self.retries.bins().len()
            + self.failures.bins().len()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_bins_track_mean_and_max() {
        let mut g = GaugeSeries::new(10.0);
        g.record(SimTime::from_secs(1.0), 2.0);
        g.record(SimTime::from_secs(2.0), 6.0);
        g.record(SimTime::from_secs(15.0), 3.0);
        assert_eq!(g.len(), 2);
        assert_eq!(g.mean(0), 4.0);
        assert_eq!(g.max(0), 6.0);
        assert_eq!(g.count(0), 2);
        assert_eq!(g.mean(1), 3.0);
        assert_eq!(g.mean(7), 0.0);
    }

    #[test]
    fn gauge_merge_mirrors_counter_merge_semantics() {
        let mut a = GaugeSeries::new(10.0);
        let empty = GaugeSeries::new(99.0);
        a.record(SimTime::from_secs(5.0), 1.0);
        // Empty merges are identity regardless of width.
        a.merge(&empty);
        assert_eq!(a.len(), 1);
        // Merging into empty adopts the width.
        let mut b = GaugeSeries::new(1.0);
        b.merge(&a);
        assert_eq!(b.len(), 1);
        assert_eq!(b.mean(0), 1.0);
        b.record(SimTime::from_secs(15.0), 3.0);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn attainment_defaults_to_one_on_empty_bins() {
        let mut s = ReplicaSeries::new(10.0);
        s.completions.record(SimTime::from_secs(25.0));
        s.completions.record(SimTime::from_secs(25.5));
        s.slo_hits.record(SimTime::from_secs(25.0));
        assert_eq!(s.attainment_per_bin(), vec![1.0, 1.0, 0.5]);
    }
}
