//! Exporters: Chrome trace-event (Perfetto) JSON for sampled spans and
//! CSV for the streamed timeseries.
//!
//! Both exporters sort their inputs by deterministic keys before
//! rendering, so the same recorder state always produces byte-identical
//! output — the sampled-span determinism proptests compare these strings
//! directly, and `xtask trace-check` cross-validates the `otherData`
//! counts against the [`TraceLedger`](crate::recorder::TraceLedger).

use crate::recorder::{InstantEvent, TraceRecorder};
use crate::series::ReplicaSeries;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Escapes a string for embedding inside a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Microseconds with fixed sub-µs precision, so timestamps render
/// identically across platforms.
fn micros(secs: f64) -> String {
    format!("{:.3}", secs * 1e6)
}

/// Renders the recorder's sampled spans and instant events as a Chrome
/// trace-event ("Perfetto JSON") document.
///
/// * Spans become `"X"` (complete) events: `pid` = replica, `tid` =
///   request id, `ts`/`dur` in microseconds of simulated time, `args`
///   carrying the traffic class and retry flag.
/// * Instant events become `"i"` events with global scope.
/// * `otherData` records the span/instant counts and the number of
///   distinct sampled requests, for `xtask trace-check` cross-validation.
pub fn perfetto_json(recorder: &TraceRecorder) -> String {
    let mut spans: Vec<_> = recorder.spans().to_vec();
    spans.sort_by(|a, b| {
        a.start
            .as_secs()
            .total_cmp(&b.start.as_secs())
            .then(a.replica.cmp(&b.replica))
            .then(a.id.cmp(&b.id))
            .then(a.phase.cmp(&b.phase))
    });
    let mut instants: Vec<&InstantEvent> = recorder.instants().iter().collect();
    instants.sort_by(|a, b| {
        a.at.as_secs()
            .total_cmp(&b.at.as_secs())
            .then(a.replica.cmp(&b.replica))
            .then(a.name.cmp(b.name))
            .then(a.detail.cmp(&b.detail))
    });
    let span_requests: BTreeSet<u64> = spans.iter().map(|s| s.id).collect();

    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{");
    let _ = write!(
        out,
        "\"spans\":{},\"span_requests\":{},\"instants\":{}",
        spans.len(),
        span_requests.len(),
        instants.len()
    );
    out.push_str("},\"traceEvents\":[");
    let mut first = true;
    for span in &spans {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{\"class\":\"{}\",\"retry\":{}}}}}",
            span.phase.label(),
            micros(span.start.as_secs()),
            micros(span.end.saturating_since(span.start).as_secs()),
            span.replica,
            span.id,
            span.class.label(),
            span.retry
        );
    }
    for instant in &instants {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{},\"pid\":{},\"s\":\"g\",\"args\":{{\"detail\":\"{}\"}}}}",
            escape_json(instant.name),
            micros(instant.at.as_secs()),
            instant.replica,
            escape_json(&instant.detail)
        );
    }
    out.push_str("]}");
    out
}

fn csv_gauge_rows(out: &mut String, replica: &str, series: &ReplicaSeries, width: f64) {
    for (name, gauge) in [
        ("queue_depth", &series.queue_depth),
        ("batch_size", &series.batch_size),
        ("kv_utilization", &series.kv_utilization),
    ] {
        for idx in 0..gauge.len() {
            if gauge.count(idx) == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{replica},{name},{idx},{:.3},{:.6},{:.6},{}",
                idx as f64 * width,
                gauge.mean(idx),
                gauge.max(idx),
                gauge.count(idx)
            );
        }
    }
    for (name, counter) in [
        ("completions", &series.completions),
        ("slo_hits", &series.slo_hits),
        ("preemptions", &series.preemptions),
        ("cache_adopts", &series.cache_adopts),
        ("cache_evictions", &series.cache_evictions),
    ] {
        for (idx, &count) in counter.bins().iter().enumerate() {
            if count == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{replica},{name},{idx},{:.3},{count},{count},{count}",
                idx as f64 * width
            );
        }
    }
}

/// Renders every streamed timeseries as CSV with header
/// `replica,series,bin,bin_start_s,mean,max,count` (counter rows repeat
/// the bin count in the mean/max columns). Fleet-scope counters use the
/// literal replica name `fleet`.
pub fn series_csv(recorder: &TraceRecorder) -> String {
    let width = recorder.config().bin_width_s;
    let mut out = String::from("replica,series,bin,bin_start_s,mean,max,count\n");
    for (replica, series) in recorder.series() {
        csv_gauge_rows(&mut out, &replica.to_string(), series, width);
    }
    let fleet = recorder.fleet_series();
    for (name, counter) in [
        ("crashes", &fleet.crashes),
        ("sheds", &fleet.sheds),
        ("retries", &fleet.retries),
        ("failures", &fleet.failures),
    ] {
        for (idx, &count) in counter.bins().iter().enumerate() {
            if count == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "fleet,{name},{idx},{:.3},{count},{count},{count}",
                idx as f64 * width
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::TraceConfig;
    use crate::sink::{AdmitInfo, SpanPhase, Terminal, TraceSink};
    use loong_simcore::class::TrafficClass;
    use loong_simcore::ids::{ReplicaId, RequestId};
    use loong_simcore::time::SimTime;

    fn small_recorder() -> TraceRecorder {
        let mut rec = TraceRecorder::new(TraceConfig::sample_all());
        rec.on_admitted(
            SimTime::from_secs(0.0),
            AdmitInfo {
                id: RequestId(1),
                class: TrafficClass::Interactive,
                conversation: None,
                input_len: 64,
                output_len: 8,
            },
        );
        rec.on_phase(SimTime::from_secs(0.5), RequestId(1), SpanPhase::Prefill);
        rec.on_phase(SimTime::from_secs(1.5), RequestId(1), SpanPhase::Decode);
        rec.on_terminal(SimTime::from_secs(3.0), RequestId(1), Terminal::Completed);
        rec.crash(SimTime::from_secs(2.0), ReplicaId(0));
        rec
    }

    #[test]
    fn perfetto_export_is_valid_and_counts_match() {
        let rec = small_recorder();
        let json = perfetto_json(&rec);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"spans\":3"));
        assert!(json.contains("\"span_requests\":1"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"name\":\"prefill\""));
        assert!(json.contains("\"name\":\"crash\""));
        // Deterministic: rendering twice yields the same bytes.
        assert_eq!(json, perfetto_json(&rec));
    }

    #[test]
    fn csv_lists_series_rows_with_header() {
        let rec = small_recorder();
        let csv = series_csv(&rec);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next(),
            Some("replica,series,bin,bin_start_s,mean,max,count")
        );
        assert!(csv.contains("0,completions,"));
        assert!(csv.contains("fleet,crashes,"));
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
