//! The bounded trace recorder.
//!
//! [`TraceRecorder`] is the [`TraceSink`] implementation safe at the
//! 1M-request regime. Memory is bounded by construction:
//!
//! * **Spans** are kept only for requests chosen by deterministic seeded
//!   sampling ([`TraceConfig::sampled`] hashes the request id, so the
//!   sampled set is a pure function of `(seed, permille)` — identical
//!   across runs, replicas and retry attempts), and capped at
//!   [`TraceConfig::max_spans`] with overflow counted, never allocated.
//! * **Series** are always-on streaming aggregations costing only their
//!   bins (see [`crate::series`]).
//! * **Open-request state** (current phase, class, phase start) exists
//!   only while a request is in flight, so its high-water tracks the
//!   engine's own O(active) residency, not the trace length.
//!
//! The [`TraceLedger`] proves all three: `O(sampled + bins + peak-open)`,
//! with every drop counted. Fleet runs build one recorder per pooled era
//! segment and absorb them in replica order via
//! [`TraceRecorder::merge_child`], which keeps recording deterministic
//! under the worker pool.

use crate::series::{FleetSeries, ReplicaSeries};
use crate::sink::{AdmitInfo, Gauges, SpanPhase, Terminal, TraceSink};
use loong_metrics::{SloSpec, TimeAttribution};
use loong_simcore::class::TrafficClass;
use loong_simcore::ids::{ReplicaId, RequestId};
use loong_simcore::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Recorder configuration. `Copy`, so era loops can ship it into pooled
/// segment closures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Per-request span-sampling rate in permille (10 = 1%). 1000 keeps
    /// every request's spans; 0 keeps none (aggregation still runs).
    pub sample_permille: u32,
    /// Seed for the sampling hash; the sampled id set is a pure function
    /// of `(seed, sample_permille)`.
    pub seed: u64,
    /// Bin width of every timeseries, in simulated seconds.
    pub bin_width_s: f64,
    /// Base SLO judged per completion (scaled by the request's class) for
    /// the per-bin attainment series.
    pub slo: SloSpec,
    /// Hard cap on retained spans; overflow is dropped and counted.
    pub max_spans: usize,
    /// Hard cap on retained instant events; overflow is dropped and
    /// counted.
    pub max_instants: usize,
}

impl Default for TraceConfig {
    /// 1% sampling, 10 s bins, the LWM default SLO, and caps sized far
    /// above any pinned workload (4M spans ≈ the 1M-request regime at 1%
    /// sampling with hundreds of spans per sampled request).
    fn default() -> Self {
        TraceConfig {
            sample_permille: 10,
            seed: 0x7ace_5eed,
            bin_width_s: 10.0,
            slo: SloSpec::default_for_lwm(),
            max_spans: 1 << 22,
            max_instants: 1 << 16,
        }
    }
}

impl TraceConfig {
    /// A config that samples every request (tests and small examples).
    pub fn sample_all() -> Self {
        TraceConfig {
            sample_permille: 1000,
            ..TraceConfig::default()
        }
    }

    /// The deterministic sampling decision for a request id: a
    /// splitmix64-style hash of `seed ^ id`, reduced mod 1000 — stable
    /// across replicas, segments and retry attempts of the same id.
    pub fn sampled(&self, id: RequestId) -> bool {
        if self.sample_permille >= 1000 {
            return true;
        }
        if self.sample_permille == 0 {
            return false;
        }
        let mut z = self.seed ^ id.raw().wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z % 1000) < u64::from(self.sample_permille)
    }
}

/// One closed lifecycle span of a sampled request, on the sim clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Raw request id (the Perfetto `tid`).
    pub id: u64,
    /// Raw replica id (the Perfetto `pid`); 0 for bare-engine runs.
    pub replica: u64,
    /// The phase the span covers.
    pub phase: SpanPhase,
    /// Span start (absolute sim time).
    pub start: SimTime,
    /// Span end (absolute sim time).
    pub end: SimTime,
    /// The request's traffic class.
    pub class: TrafficClass,
    /// True when this span belongs to a retry attempt after a crash.
    pub retry: bool,
}

/// A point event: fleet lifecycle edges and sampled request instants.
#[derive(Debug, Clone, PartialEq)]
pub struct InstantEvent {
    /// When the event happened (absolute sim time).
    pub at: SimTime,
    /// Raw replica id, or [`InstantEvent::FLEET`] for fleet-scope events.
    pub replica: u64,
    /// Event name (the Perfetto event name).
    pub name: &'static str,
    /// Free-form detail rendered into the Perfetto `args`.
    pub detail: String,
}

impl InstantEvent {
    /// Sentinel replica for fleet-scope events.
    pub const FLEET: u64 = u64::MAX;
}

/// The recorder's residency proof, in the spirit of `FleetFootprint`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceLedger {
    /// Admissions observed (retry attempts count again).
    pub requests_seen: u64,
    /// Distinct sampled requests (first attempts only).
    pub sampled_requests: u64,
    /// Spans retained.
    pub spans_recorded: u64,
    /// Spans dropped at the [`TraceConfig::max_spans`] cap.
    pub spans_dropped: u64,
    /// Instant events retained.
    pub instants_recorded: u64,
    /// Instant events dropped at the [`TraceConfig::max_instants`] cap.
    pub instants_dropped: u64,
    /// Requests currently open (nonzero only mid-run).
    pub open_requests: u64,
    /// High-water of concurrently open request state.
    pub peak_open_requests: u64,
    /// Total materialised timeseries bins across replicas + fleet scope.
    pub series_bins: u64,
    /// Scheduling-point gauge samples folded into the series.
    pub gauge_samples: u64,
}

/// Per-open-request state: one `Copy` record per in-flight request.
#[derive(Debug, Clone, Copy)]
struct OpenEntry {
    class: TrafficClass,
    conversation: Option<u64>,
    admitted: SimTime,
    output_len: u64,
    phase: SpanPhase,
    phase_start: SimTime,
    replica: u64,
    sampled: bool,
    retry: bool,
}

/// A casualty waiting for its retry to re-enter admission.
#[derive(Debug, Clone, Copy)]
struct PendingRetry {
    casualty_at: SimTime,
    class: TrafficClass,
}

/// The bounded, deterministic trace recorder (see module docs).
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    cfg: TraceConfig,
    /// Replica key this recorder's replica-agnostic events file under:
    /// always 0 (bare engines and era-segment children; fleet merges
    /// re-key at absorb time).
    replica_tag: u64,
    /// Ids that have been scheduled for retry at least once, ever. Era
    /// segments receive a snapshot so their engines can attribute retry
    /// prefill without talking to the parent.
    retried: BTreeSet<u64>,
    open: BTreeMap<u64, OpenEntry>,
    spans: Vec<Span>,
    instants: Vec<InstantEvent>,
    series: BTreeMap<u64, ReplicaSeries>,
    fleet_series: FleetSeries,
    attribution: TimeAttribution,
    pending_retry: BTreeMap<u64, PendingRetry>,
    requests_seen: u64,
    sampled_requests: u64,
    spans_dropped: u64,
    instants_dropped: u64,
    peak_open: u64,
    gauge_samples: u64,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder::new(TraceConfig::default())
    }
}

impl TraceRecorder {
    /// Creates a recorder with the given config.
    pub fn new(cfg: TraceConfig) -> Self {
        TraceRecorder {
            cfg,
            replica_tag: 0,
            retried: BTreeSet::new(),
            open: BTreeMap::new(),
            spans: Vec::new(),
            instants: Vec::new(),
            series: BTreeMap::new(),
            fleet_series: FleetSeries::new(cfg.bin_width_s),
            attribution: TimeAttribution::default(),
            pending_retry: BTreeMap::new(),
            requests_seen: 0,
            sampled_requests: 0,
            spans_dropped: 0,
            instants_dropped: 0,
            peak_open: 0,
            gauge_samples: 0,
        }
    }

    /// Creates a child recorder for one pooled era segment. `retried` is
    /// the parent's snapshot of ever-retried ids, so the segment can
    /// attribute prefill by retries to `retry_prefill_s` on its own.
    pub fn segment(cfg: TraceConfig, retried: &BTreeSet<u64>) -> Self {
        let mut child = TraceRecorder::new(cfg);
        child.retried = retried.clone();
        child
    }

    /// The recorder's configuration.
    pub fn config(&self) -> TraceConfig {
        self.cfg
    }

    /// Snapshot of every id ever scheduled for retry.
    pub fn retried_snapshot(&self) -> BTreeSet<u64> {
        self.retried.clone()
    }

    /// The per-phase, per-class time attribution accumulated so far.
    pub fn attribution(&self) -> TimeAttribution {
        self.attribution
    }

    /// Closed sampled spans, in close order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Retained instant events, in record order.
    pub fn instants(&self) -> &[InstantEvent] {
        &self.instants
    }

    /// Per-replica timeseries, keyed by raw replica id.
    pub fn series(&self) -> &BTreeMap<u64, ReplicaSeries> {
        &self.series
    }

    /// Fleet-scope event counters.
    pub fn fleet_series(&self) -> &FleetSeries {
        &self.fleet_series
    }

    /// The residency ledger (see [`TraceLedger`]).
    pub fn ledger(&self) -> TraceLedger {
        TraceLedger {
            requests_seen: self.requests_seen,
            sampled_requests: self.sampled_requests,
            spans_recorded: self.spans.len() as u64,
            spans_dropped: self.spans_dropped,
            instants_recorded: self.instants.len() as u64,
            instants_dropped: self.instants_dropped,
            open_requests: self.open.len() as u64,
            peak_open_requests: self.peak_open.max(self.open.len() as u64),
            series_bins: self.series.values().map(ReplicaSeries::bins).sum::<u64>()
                + self.fleet_series.bins(),
            gauge_samples: self.gauge_samples,
        }
    }

    fn series_mut(&mut self, replica: u64) -> &mut ReplicaSeries {
        let width = self.cfg.bin_width_s;
        self.series
            .entry(replica)
            .or_insert_with(|| ReplicaSeries::new(width))
    }

    fn push_span(&mut self, span: Span) {
        if span.end.as_secs() <= span.start.as_secs() {
            // Zero-width phase hops (e.g. DecodeReady at the instant of
            // dispatch) carry no time; skip them so exports stay tight.
            return;
        }
        if self.spans.len() < self.cfg.max_spans {
            self.spans.push(span);
        } else {
            self.spans_dropped += 1;
        }
    }

    fn push_instant(&mut self, instant: InstantEvent) {
        if self.instants.len() < self.cfg.max_instants {
            self.instants.push(instant);
        } else {
            self.instants_dropped += 1;
        }
    }

    fn note_open_peak(&mut self) {
        self.peak_open = self.peak_open.max(self.open.len() as u64);
    }

    fn fold_phase(&mut self, class: TrafficClass, retry: bool, phase: SpanPhase, secs: f64) {
        let p = self.attribution.class_mut(class);
        match phase {
            SpanPhase::Queued => p.queued_s += secs,
            SpanPhase::Prefill => {
                if retry {
                    p.retry_prefill_s += secs;
                } else {
                    p.prefill_s += secs;
                }
            }
            SpanPhase::Decode => p.decode_s += secs,
            SpanPhase::Migrate => p.migrate_s += secs,
            SpanPhase::SwapOut | SpanPhase::SwappedOut | SpanPhase::SwapIn => p.swap_s += secs,
        }
    }

    /// Closes an open entry's current phase at `at`: folds attribution and
    /// (for sampled requests) emits the span.
    fn close_phase(&mut self, id: u64, entry: &OpenEntry, at: SimTime) {
        let secs = at.saturating_since(entry.phase_start).as_secs();
        self.fold_phase(entry.class, entry.retry, entry.phase, secs);
        if entry.sampled {
            self.push_span(Span {
                id,
                replica: entry.replica,
                phase: entry.phase,
                start: entry.phase_start,
                end: at,
                class: entry.class,
                retry: entry.retry,
            });
        }
    }

    fn close_terminal(&mut self, at: SimTime, id: RequestId, terminal: Terminal) {
        let Some(entry) = self.open.remove(&id.raw()) else {
            return;
        };
        self.close_phase(id.raw(), &entry, at);
        match terminal {
            Terminal::Completed => {
                let threshold = self.cfg.slo.per_token_s * entry.class.slo_scale();
                let per_token =
                    at.saturating_since(entry.admitted).as_secs() / entry.output_len.max(1) as f64;
                let sr = self.series_mut(entry.replica);
                sr.completions.record(at);
                if per_token <= threshold {
                    sr.slo_hits.record(at);
                }
            }
            Terminal::Casualty => {
                self.pending_retry.insert(
                    id.raw(),
                    PendingRetry {
                        casualty_at: at,
                        class: entry.class,
                    },
                );
            }
            Terminal::Rejected | Terminal::Failed | Terminal::Unfinished => {}
        }
        if entry.sampled {
            let detail = match entry.conversation {
                Some(c) => format!("request {} (conversation {c})", id.raw()),
                None => format!("request {}", id.raw()),
            };
            self.push_instant(InstantEvent {
                at,
                replica: entry.replica,
                name: terminal.label(),
                detail,
            });
        }
    }

    // ----- fleet-level events (called from the era loops, serially) -----

    /// A replica crashed at `at` (era boundary).
    pub fn crash(&mut self, at: SimTime, replica: ReplicaId) {
        self.fleet_series.crashes.record(at);
        self.push_instant(InstantEvent {
            at,
            replica: replica.raw(),
            name: "crash",
            detail: format!("replica {replica}"),
        });
    }

    /// A crashed replica becomes routable again at `at`.
    pub fn recover(&mut self, at: SimTime, replica: ReplicaId) {
        self.push_instant(InstantEvent {
            at,
            replica: replica.raw(),
            name: "recover",
            detail: format!("replica {replica}"),
        });
    }

    /// The circuit breaker opened for a replica.
    pub fn breaker_open(&mut self, at: SimTime, replica: ReplicaId) {
        self.push_instant(InstantEvent {
            at,
            replica: replica.raw(),
            name: "breaker-open",
            detail: format!("replica {replica}"),
        });
    }

    /// The autoscaler activated a replica (ready after provisioning).
    pub fn replica_activated(&mut self, at: SimTime, replica: ReplicaId, ready_at: SimTime) {
        self.push_instant(InstantEvent {
            at,
            replica: replica.raw(),
            name: "scale-up",
            detail: format!("replica {replica} ready at {:.3}s", ready_at.as_secs()),
        });
    }

    /// The autoscaler retired a replica (drain finished).
    pub fn replica_retired(&mut self, at: SimTime, replica: ReplicaId) {
        self.push_instant(InstantEvent {
            at,
            replica: replica.raw(),
            name: "scale-down",
            detail: format!("replica {replica} retired"),
        });
    }

    /// Admission shed a request before it reached any replica.
    pub fn shed(&mut self, at: SimTime, id: RequestId, class: TrafficClass, reason: &str) {
        self.fleet_series.sheds.record(at);
        if self.cfg.sampled(id) {
            self.push_instant(InstantEvent {
                at,
                replica: InstantEvent::FLEET,
                name: "shed",
                detail: format!("request {} ({}): {reason}", id.raw(), class.label()),
            });
        }
    }

    /// A request in flight on a crashed replica: closes its lifecycle as a
    /// casualty; a later [`TraceRecorder::retry_scheduled`] +
    /// re-admission reopens it as a retry attempt.
    pub fn casualty(&mut self, at: SimTime, id: RequestId) {
        self.close_terminal(at, id, Terminal::Casualty);
    }

    /// A casualty was granted a retry that re-enters admission at
    /// `resume_at`. Downtime (crash to re-admission) is attributed here,
    /// where both endpoints are known — the re-admission itself usually
    /// happens inside a pooled child recorder that never saw the crash.
    pub fn retry_scheduled(
        &mut self,
        at: SimTime,
        id: RequestId,
        attempt: u32,
        resume_at: SimTime,
    ) {
        self.retried.insert(id.raw());
        self.fleet_series.retries.record(at);
        if let Some(pending) = self.pending_retry.remove(&id.raw()) {
            self.attribution.class_mut(pending.class).downtime_s +=
                resume_at.saturating_since(pending.casualty_at).as_secs();
        }
        if self.cfg.sampled(id) {
            self.push_instant(InstantEvent {
                at,
                replica: InstantEvent::FLEET,
                name: "retry",
                detail: format!(
                    "request {} attempt {attempt} resumes at {:.3}s",
                    id.raw(),
                    resume_at.as_secs()
                ),
            });
        }
    }

    /// A request failed terminally (no retry budget left).
    pub fn request_failed(&mut self, at: SimTime, id: RequestId, reason: &str) {
        // The casualty close already ran; drop the pending-retry marker so
        // the backoff gap is not attributed as downtime.
        self.pending_retry.remove(&id.raw());
        self.fleet_series.failures.record(at);
        if self.cfg.sampled(id) {
            let detail = format!("request {}: {reason}", id.raw());
            self.push_instant(InstantEvent {
                at,
                replica: InstantEvent::FLEET,
                name: "fail",
                detail,
            });
        }
    }

    /// Absorbs a pooled era segment's recorder, re-keying its
    /// replica-agnostic events to `replica`. Called serially in replica
    /// order after the pool joins, which keeps recording deterministic.
    pub fn merge_child(&mut self, replica: ReplicaId, child: TraceRecorder) {
        let r = replica.raw();
        self.requests_seen += child.requests_seen;
        self.sampled_requests += child.sampled_requests;
        self.spans_dropped += child.spans_dropped;
        self.instants_dropped += child.instants_dropped;
        self.gauge_samples += child.gauge_samples;
        // The child's open state coexisted with the parent's during the
        // segment; bound the combined high-water conservatively.
        self.peak_open = self
            .peak_open
            .max(self.open.len() as u64 + child.peak_open.max(child.open.len() as u64));
        for mut span in child.spans {
            span.replica = r;
            if self.spans.len() < self.cfg.max_spans {
                self.spans.push(span);
            } else {
                self.spans_dropped += 1;
            }
        }
        for mut instant in child.instants {
            if instant.replica != InstantEvent::FLEET {
                instant.replica = r;
            }
            self.push_instant(instant);
        }
        for (id, mut entry) in child.open {
            entry.replica = r;
            let previous = self.open.insert(id, entry);
            debug_assert!(
                previous.is_none(),
                "request {id} open in two segments at once"
            );
        }
        for (_, child_series) in child.series {
            self.series_mut(r).merge(&child_series);
        }
        self.fleet_series.merge(&child.fleet_series);
        self.attribution.add(&child.attribution);
        self.note_open_peak();
    }

    /// Closes every still-open request as [`Terminal::Unfinished`] at
    /// `at` (normally the run's makespan). Id order, so deterministic.
    pub fn finalize(&mut self, at: SimTime) {
        let open_ids: Vec<u64> = self.open.keys().copied().collect();
        for id in open_ids {
            self.close_terminal(at, RequestId(id), Terminal::Unfinished);
        }
    }
}

impl TraceSink for TraceRecorder {
    fn on_admitted(&mut self, at: SimTime, info: AdmitInfo) {
        self.requests_seen += 1;
        let raw = info.id.raw();
        let retry = self.retried.contains(&raw) || self.pending_retry.contains_key(&raw);
        if let Some(pending) = self.pending_retry.remove(&raw) {
            self.attribution.class_mut(pending.class).downtime_s +=
                at.saturating_since(pending.casualty_at).as_secs();
        }
        let sampled = self.cfg.sampled(info.id);
        if sampled && !retry {
            self.sampled_requests += 1;
        }
        self.open.insert(
            raw,
            OpenEntry {
                class: info.class,
                conversation: info.conversation.map(|c| c.raw()),
                admitted: at,
                output_len: info.output_len,
                phase: SpanPhase::Queued,
                phase_start: at,
                replica: self.replica_tag,
                sampled,
                retry,
            },
        );
        self.note_open_peak();
    }

    fn on_phase(&mut self, at: SimTime, id: RequestId, phase: SpanPhase) {
        let Some(mut entry) = self.open.get(&id.raw()).copied() else {
            return;
        };
        if entry.phase == phase {
            // Coalesce same-phase transitions (decode iterations cycle
            // Decoding -> DecodeReady -> Decoding; one span covers them).
            return;
        }
        self.close_phase(id.raw(), &entry, at);
        entry.phase = phase;
        entry.phase_start = at;
        self.open.insert(id.raw(), entry);
    }

    fn on_terminal(&mut self, at: SimTime, id: RequestId, terminal: Terminal) {
        self.close_terminal(at, id, terminal);
    }

    fn on_preempted(&mut self, at: SimTime, id: RequestId) {
        let Some(entry) = self.open.get(&id.raw()).copied() else {
            return;
        };
        self.series_mut(entry.replica).preemptions.record(at);
        if entry.sampled {
            self.push_instant(InstantEvent {
                at,
                replica: entry.replica,
                name: "preempt",
                detail: format!("request {}", id.raw()),
            });
        }
    }

    fn on_cache_adopt(&mut self, at: SimTime, id: RequestId, tokens: u64) {
        let Some(entry) = self.open.get(&id.raw()).copied() else {
            return;
        };
        self.series_mut(entry.replica).cache_adopts.record(at);
        if entry.sampled {
            self.push_instant(InstantEvent {
                at,
                replica: entry.replica,
                name: "cache-adopt",
                detail: format!("request {} reused {tokens} tokens", id.raw()),
            });
        }
    }

    fn on_cache_evict(&mut self, at: SimTime, entries: u64, _tokens: u64) {
        let tag = self.replica_tag;
        self.series_mut(tag)
            .cache_evictions
            .record_many(at, entries);
    }

    fn on_gauges(&mut self, at: SimTime, gauges: Gauges) {
        self.gauge_samples += 1;
        let tag = self.replica_tag;
        let sr = self.series_mut(tag);
        sr.queue_depth.record(at, gauges.queue_depth as f64);
        sr.batch_size.record(at, gauges.batch_size as f64);
        sr.kv_utilization.record(at, gauges.kv_utilization);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loong_simcore::ids::ConversationId;

    fn admit(id: u64, class: TrafficClass) -> AdmitInfo {
        AdmitInfo {
            id: RequestId(id),
            class,
            conversation: if id.is_multiple_of(2) {
                Some(ConversationId(id / 2))
            } else {
                None
            },
            input_len: 100,
            output_len: 10,
        }
    }

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn sampling_is_deterministic_and_roughly_calibrated() {
        let cfg = TraceConfig::default(); // 1%
        let hits: Vec<u64> = (0..100_000)
            .filter(|&i| cfg.sampled(RequestId(i)))
            .collect();
        let again: Vec<u64> = (0..100_000)
            .filter(|&i| cfg.sampled(RequestId(i)))
            .collect();
        assert_eq!(hits, again, "sampling must be a pure function of the id");
        assert!(
            (500..2000).contains(&hits.len()),
            "1% of 100k should sample ~1000 ids, got {}",
            hits.len()
        );
        assert!(TraceConfig::sample_all().sampled(RequestId(12345)));
    }

    #[test]
    fn lifecycle_folds_attribution_and_emits_spans() {
        let mut rec = TraceRecorder::new(TraceConfig::sample_all());
        rec.on_admitted(t(0.0), admit(7, TrafficClass::Interactive));
        rec.on_phase(t(1.0), RequestId(7), SpanPhase::Prefill);
        rec.on_phase(t(3.0), RequestId(7), SpanPhase::Decode);
        rec.on_phase(t(3.0), RequestId(7), SpanPhase::Decode); // coalesced
        rec.on_terminal(t(8.0), RequestId(7), Terminal::Completed);

        let a = rec.attribution();
        assert_eq!(a.interactive.queued_s, 1.0);
        assert_eq!(a.interactive.prefill_s, 2.0);
        assert_eq!(a.interactive.decode_s, 5.0);
        assert_eq!(a.total().total_s(), 8.0);

        let ledger = rec.ledger();
        assert_eq!(ledger.requests_seen, 1);
        assert_eq!(ledger.sampled_requests, 1);
        assert_eq!(ledger.spans_recorded, 3);
        assert_eq!(ledger.open_requests, 0);
        assert_eq!(ledger.peak_open_requests, 1);
        let series = rec.series().get(&0).expect("replica 0 series");
        assert_eq!(series.completions.total(), 1);
        assert_eq!(series.slo_hits.total(), 1);
    }

    #[test]
    fn casualty_retry_attributes_downtime_and_retry_prefill() {
        let cfg = TraceConfig::sample_all();
        let mut rec = TraceRecorder::new(cfg);
        rec.on_admitted(t(0.0), admit(3, TrafficClass::Standard));
        rec.on_phase(t(1.0), RequestId(3), SpanPhase::Prefill);
        rec.casualty(t(2.0), RequestId(3));
        rec.retry_scheduled(t(2.0), RequestId(3), 1, t(2.5));

        // The retry executes in a later era segment.
        let mut child = TraceRecorder::segment(cfg, &rec.retried_snapshot());
        child.on_admitted(t(2.5), admit(3, TrafficClass::Standard));
        child.on_phase(t(3.0), RequestId(3), SpanPhase::Prefill);
        child.on_phase(t(4.5), RequestId(3), SpanPhase::Decode);
        child.on_terminal(t(5.0), RequestId(3), Terminal::Completed);
        rec.merge_child(ReplicaId(1), child);
        rec.on_admitted(t(2.5), admit(99, TrafficClass::Standard)); // resolves nothing
        rec.finalize(t(6.0));

        let a = rec.attribution();
        // First attempt: 1s queued + 1s prefill (lost work still prefill).
        // Retry: 0.5s queued + 1.5s retry-prefill + 0.5s decode.
        assert_eq!(a.standard.prefill_s, 1.0);
        assert_eq!(a.standard.retry_prefill_s, 1.5);
        assert_eq!(a.standard.decode_s, 0.5);
        assert_eq!(a.standard.queued_s, 1.0 + 0.5 + 3.5); // + request 99 unfinished
        assert_eq!(a.standard.downtime_s, 0.5); // crash 2.0 -> re-admit 2.5
        assert_eq!(rec.fleet_series().retries.total(), 1);
        assert_eq!(a.total().total_s(), 5.0 + 1.0 + 1.5 + 0.5 + 0.5);
    }

    #[test]
    fn span_cap_drops_and_counts() {
        let cfg = TraceConfig {
            max_spans: 2,
            ..TraceConfig::sample_all()
        };
        let mut rec = TraceRecorder::new(cfg);
        rec.on_admitted(t(0.0), admit(1, TrafficClass::Interactive));
        rec.on_phase(t(1.0), RequestId(1), SpanPhase::Prefill);
        rec.on_phase(t(2.0), RequestId(1), SpanPhase::Decode);
        rec.on_phase(t(3.0), RequestId(1), SpanPhase::SwapOut);
        rec.on_terminal(t(4.0), RequestId(1), Terminal::Completed);
        let ledger = rec.ledger();
        assert_eq!(ledger.spans_recorded, 2);
        assert_eq!(ledger.spans_dropped, 2);
        // Attribution is exact even when spans drop.
        assert_eq!(rec.attribution().total().total_s(), 4.0);
    }

    #[test]
    fn unsampled_requests_cost_no_spans_but_full_aggregation() {
        let cfg = TraceConfig {
            sample_permille: 0,
            ..TraceConfig::default()
        };
        let mut rec = TraceRecorder::new(cfg);
        rec.on_admitted(t(0.0), admit(5, TrafficClass::BestEffort));
        rec.on_phase(t(2.0), RequestId(5), SpanPhase::Prefill);
        rec.on_terminal(t(6.0), RequestId(5), Terminal::Completed);
        let ledger = rec.ledger();
        assert_eq!(ledger.spans_recorded, 0);
        assert_eq!(ledger.sampled_requests, 0);
        assert_eq!(rec.attribution().best_effort.queued_s, 2.0);
        assert_eq!(rec.attribution().best_effort.prefill_s, 4.0);
        assert_eq!(rec.series().get(&0).unwrap().completions.total(), 1);
    }
}
