//! # loong-trace: the observability tier
//!
//! Per-request lifecycle spans, fleet timeseries, and Perfetto export for
//! the LoongServe simulator — designed around two invariants:
//!
//! 1. **Observer inertness.** The execution stack emits into a
//!    [`TraceSink`]; sinks receive copies of already-computed values and
//!    influence nothing, so an armed-but-no-op sink reproduces every
//!    pinned golden digest bit for bit (proven by the
//!    `observability_properties` suite).
//! 2. **Bounded residency.** The [`TraceRecorder`] stays
//!    `O(sampled + bins + peak-open)` at the 1M-request regime:
//!    deterministic seeded per-request sampling bounds spans, streaming
//!    binned aggregation bounds series, and the [`TraceLedger`] proves
//!    both, with every overflow drop counted.
//!
//! Module map:
//! * [`sink`] — the [`TraceSink`] trait, [`NoopSink`], and the event
//!   vocabulary ([`SpanPhase`], [`Terminal`], [`AdmitInfo`], [`Gauges`]).
//! * [`recorder`] — [`TraceConfig`], [`TraceRecorder`], [`TraceLedger`],
//!   and the pooled-segment merge protocol.
//! * [`series`] — always-on streaming aggregation ([`GaugeSeries`],
//!   [`ReplicaSeries`], [`FleetSeries`]).
//! * [`export`] — [`perfetto_json`] and [`series_csv`].

#![warn(missing_docs)]

pub mod export;
pub mod recorder;
pub mod series;
pub mod sink;

pub use export::{perfetto_json, series_csv};
pub use recorder::{InstantEvent, Span, TraceConfig, TraceLedger, TraceRecorder};
pub use series::{FleetSeries, GaugeSeries, ReplicaSeries};
pub use sink::{AdmitInfo, Gauges, NoopSink, SpanPhase, Terminal, TraceSink};

/// Convenience glob-import for examples and tests.
pub mod prelude {
    pub use crate::export::{perfetto_json, series_csv};
    pub use crate::recorder::{TraceConfig, TraceLedger, TraceRecorder};
    pub use crate::sink::{NoopSink, SpanPhase, Terminal, TraceSink};
}
