//! The observation boundary: the [`TraceSink`] trait the execution stack
//! emits into.
//!
//! The engine and the fleet era loops call sink methods at every request
//! lifecycle edge and scheduling point. A sink **observes** — it receives
//! copies of values the engine already computed and can influence nothing,
//! which is what makes the tier provably inert: a run with [`NoopSink`]
//! (or any sink) executes the exact same decision sequence as a run with
//! no sink at all, bit for bit. Every trait method has an empty default
//! body, so [`NoopSink`] is a unit struct and the disabled path costs one
//! virtual call per event.

use loong_simcore::class::TrafficClass;
use loong_simcore::ids::{ConversationId, RequestId};
use loong_simcore::time::SimTime;

/// Everything known about a request when the engine admits it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmitInfo {
    /// The request id (stable across retry attempts).
    pub id: RequestId,
    /// The traffic class the request arrived under.
    pub class: TrafficClass,
    /// The conversation this request belongs to, for multi-turn traffic.
    pub conversation: Option<ConversationId>,
    /// Prompt length in tokens.
    pub input_len: u64,
    /// Oracle output length in tokens.
    pub output_len: u64,
}

/// The coarse lifecycle phase a request span covers.
///
/// Engine phases map onto these spans many-to-one: `Pending` and
/// `DecodeReady`-before-the-first-token are both `Queued`, and
/// `DecodeReady` *between* decode iterations stays inside the `Decode`
/// span (recorders coalesce same-phase transitions), so an uninterrupted
/// decode stretch is one span rather than one per iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanPhase {
    /// Waiting for admission or dispatch.
    Queued,
    /// Prefill (full or chunked) executing.
    Prefill,
    /// Decode iterations (including inter-iteration batch waits).
    Decode,
    /// Elastic KV migration in flight.
    Migrate,
    /// Swap-out transfer to the host tier in flight.
    SwapOut,
    /// KV parked on the host tier.
    SwappedOut,
    /// Swap-in transfer back to the device in flight.
    SwapIn,
}

impl SpanPhase {
    /// The Perfetto/report label.
    pub fn label(self) -> &'static str {
        match self {
            SpanPhase::Queued => "queued",
            SpanPhase::Prefill => "prefill",
            SpanPhase::Decode => "decode",
            SpanPhase::Migrate => "migrate",
            SpanPhase::SwapOut => "swap-out",
            SpanPhase::SwappedOut => "swapped",
            SpanPhase::SwapIn => "swap-in",
        }
    }
}

/// How a request's lifecycle (or one retry attempt of it) ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminal {
    /// Finished all output tokens.
    Completed,
    /// Rejected by the scheduler (oversize, admission policy).
    Rejected,
    /// In flight on a replica that crashed; may re-enter as a retry.
    Casualty,
    /// Terminally failed (retry budget exhausted).
    Failed,
    /// Still in flight when the run ended.
    Unfinished,
}

impl Terminal {
    /// The Perfetto/report label.
    pub fn label(self) -> &'static str {
        match self {
            Terminal::Completed => "completed",
            Terminal::Rejected => "rejected",
            Terminal::Casualty => "casualty",
            Terminal::Failed => "failed",
            Terminal::Unfinished => "unfinished",
        }
    }
}

/// Scheduler signals sampled at one scheduling point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gauges {
    /// Requests waiting for prefill dispatch.
    pub queue_depth: u64,
    /// Decode-phase requests in flight.
    pub batch_size: u64,
    /// Active-working-set device KV utilisation in `[0, 1]`.
    pub kv_utilization: f64,
}

/// The observation interface the execution stack emits into.
///
/// All methods default to no-ops; implement only what you consume. Sim
/// times are absolute (the engine clock is the fleet clock), so sinks
/// never need offset arithmetic.
pub trait TraceSink {
    /// A request entered the engine (arrival event processed).
    fn on_admitted(&mut self, at: SimTime, info: AdmitInfo) {
        let _ = (at, info);
    }

    /// A request moved to a new lifecycle phase.
    fn on_phase(&mut self, at: SimTime, id: RequestId, phase: SpanPhase) {
        let _ = (at, id, phase);
    }

    /// A request's lifecycle ended (within this engine run).
    fn on_terminal(&mut self, at: SimTime, id: RequestId, terminal: Terminal) {
        let _ = (at, id, terminal);
    }

    /// A request was preempted (checkpointed back to pending).
    fn on_preempted(&mut self, at: SimTime, id: RequestId) {
        let _ = (at, id);
    }

    /// A request adopted `tokens` cached KV tokens from the prefix index.
    fn on_cache_adopt(&mut self, at: SimTime, id: RequestId, tokens: u64) {
        let _ = (at, id, tokens);
    }

    /// The prefix cache evicted `entries` entries totalling `tokens`.
    fn on_cache_evict(&mut self, at: SimTime, entries: u64, tokens: u64) {
        let _ = (at, entries, tokens);
    }

    /// Scheduler signals at one scheduling point.
    fn on_gauges(&mut self, at: SimTime, gauges: Gauges) {
        let _ = (at, gauges);
    }
}

/// The zero-cost default sink: observes nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl TraceSink for NoopSink {}
