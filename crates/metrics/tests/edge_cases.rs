//! Edge-case coverage for the aggregation paths the prefix-cache and
//! pressure rollups lean on.
//!
//! The fleet summary code merges per-replica `PressureStats`/`CacheStats`
//! records and per-replica latency samples; empty replicas, single-sample
//! distributions and all-zero counter blocks are precisely the shapes that
//! show up on lightly loaded fleets, so they are pinned here, plus a
//! proptest that the merged fleet stats always equal the fold of the
//! per-replica records (counters sum, high-water marks take the max).

use loong_metrics::prelude::*;
use loong_simcore::ids::RequestId;
use loong_simcore::time::SimTime;
use proptest::prelude::*;

const PROPTEST_SEED: u64 = 0x3e7a_11ed_9e57_0001;

fn ci_config(cases: u32) -> ProptestConfig {
    ProptestConfig {
        cases,
        failure_persistence: Some(FileFailurePersistence::Off),
        rng_seed: PROPTEST_SEED,
    }
}

fn record(id: u64) -> RequestRecord {
    RequestRecord {
        id: RequestId(id),
        arrival: SimTime::ZERO,
        input_len: 100,
        output_len: 10,
        prefill_start: SimTime::from_secs(0.1),
        first_token: SimTime::from_secs(0.5),
        finish: SimTime::from_secs(2.0),
        preemptions: 0,
        class: Default::default(),
    }
}

fn slo() -> SloSpec {
    SloSpec {
        per_token_s: 10.0,
        input_s: 10.0,
        output_s: 10.0,
    }
}

#[test]
fn empty_and_single_sample_percentiles_are_well_defined() {
    // Empty: all zeros, every percentile.
    for p in [0.0, 50.0, 90.0, 99.0, 100.0] {
        assert_eq!(percentile(&[], p), 0.0);
    }
    assert_eq!(mean(&[]), 0.0);
    let empty = LatencySummary::empty();
    assert_eq!(
        (empty.count, empty.mean, empty.p50, empty.p90),
        (0, 0.0, 0.0, 0.0)
    );

    // Single sample: every percentile is the sample, including the ends.
    for p in [0.0, 37.5, 50.0, 99.0, 100.0] {
        assert_eq!(percentile(&[7.25], p), 7.25);
    }
    let single = LatencySummary::from_values(&[7.25]);
    assert_eq!(single.count, 1);
    assert_eq!(single.p50, 7.25);
    assert_eq!(single.p99, 7.25);
    assert_eq!(single.max, 7.25);

    // Two samples: linear interpolation between closest ranks.
    assert_eq!(percentile(&[1.0, 3.0], 50.0), 2.0);
    assert_eq!(percentile(&[1.0, 3.0], 0.0), 1.0);
    assert_eq!(percentile(&[1.0, 3.0], 100.0), 3.0);
}

#[test]
fn timeseries_edges_are_well_defined() {
    // Empty counter: no bins, zero everything.
    let empty = BinnedCounter::new(10.0);
    assert!(empty.bins().is_empty());
    assert_eq!(empty.total(), 0);
    assert_eq!(empty.mean_per_bin(), 0.0);
    assert_eq!(empty.max_per_bin(), 0);

    // A single event at exactly t = 0 creates exactly one bin.
    let mut one = BinnedCounter::new(10.0);
    one.record(SimTime::ZERO);
    assert_eq!(one.bins(), &[1]);
    assert_eq!(one.mean_per_bin(), 1.0);

    // An event exactly on a bin boundary lands in the upper bin.
    let mut boundary = BinnedCounter::new(10.0);
    boundary.record(SimTime::from_secs(10.0));
    assert_eq!(boundary.bins(), &[0, 1]);

    // Zero-count record_many still materialises the bin but adds nothing.
    let mut zero = BinnedCounter::new(1.0);
    zero.record_many(SimTime::from_secs(3.5), 0);
    assert_eq!(zero.total(), 0);
    assert_eq!(zero.bins(), &[0, 0, 0, 0]);
    assert_eq!(zero.max_per_bin(), 0);
}

#[test]
fn bin_boundaries_survive_floating_point() {
    // 243 * 0.3 is the classic trap: the product divides back to
    // 242.999…, so a naive floor puts a bin-boundary event one bin low.
    // The half-open [i·w, (i+1)·w) contract says it belongs to bin 243.
    let w = 0.3;
    let t = SimTime::from_secs(243.0 * w);
    assert_eq!(bin_index(w, t), 243);

    // Sweep boundary products across widths that are not exactly
    // representable: every `i·w` must land in bin `i`, and the instants
    // just inside each side of the boundary must flank it.
    for w in [0.1, 0.3, 0.7, 1.3, 2.6] {
        for i in [0usize, 1, 7, 100, 243, 1000] {
            let boundary = i as f64 * w;
            assert_eq!(
                bin_index(w, SimTime::from_secs(boundary)),
                i,
                "boundary {i}·{w} must open bin {i}"
            );
            let inside = bin_index(w, SimTime::from_secs(boundary + w * 0.5));
            assert_eq!(inside, i, "midpoint of bin {i} (w={w})");
        }
    }
}

#[test]
#[should_panic(expected = "bin width must be positive")]
fn zero_width_counter_is_rejected() {
    let _ = BinnedCounter::new(0.0);
}

#[test]
#[should_panic(expected = "bin width must be positive")]
fn infinite_width_counter_is_rejected() {
    // `inf > 0.0` holds, so a bare positivity check would admit a counter
    // that folds every event into bin 0; the finiteness guard must fire.
    let _ = BinnedCounter::new(f64::INFINITY);
}

#[test]
fn empty_merge_is_identity_and_adopts_width() {
    // Merging an empty counter is the identity even when the widths
    // disagree — an empty counter carries no binned information.
    let mut base = BinnedCounter::new(10.0);
    base.record(SimTime::from_secs(5.0));
    let before = base.clone();
    base.merge(&BinnedCounter::new(0.5));
    assert_eq!(base, before);

    // Merging *into* an empty counter adopts the other's width and bins.
    let mut fresh = BinnedCounter::new(10.0);
    let mut other = BinnedCounter::new(0.5);
    other.record(SimTime::from_secs(1.25));
    fresh.merge(&other);
    assert_eq!(fresh.bin_width(), 0.5);
    assert_eq!(fresh.bins(), other.bins());
    assert_eq!(fresh.total(), 1);

    // Two empties merge to an empty, width untouched.
    let mut a = BinnedCounter::new(10.0);
    a.merge(&BinnedCounter::new(2.0));
    assert!(a.bins().is_empty());
    assert_eq!(a.bin_width(), 10.0);
}

#[test]
#[should_panic(expected = "different bin widths")]
fn mismatched_nonempty_merge_is_rejected() {
    let mut a = BinnedCounter::new(10.0);
    a.record(SimTime::from_secs(1.0));
    let mut b = BinnedCounter::new(5.0);
    b.record(SimTime::from_secs(1.0));
    a.merge(&b);
}

#[test]
fn fleet_rollup_of_all_zero_stats_stays_zero() {
    let r0 = [record(0)];
    let r1 = [record(1)];
    let mut s = FleetSummary::from_replica_records("fleet", "w", 1.0, &[&r0, &r1], &slo());
    s.attach_pressure(&[PressureStats::default(), PressureStats::default()]);
    s.attach_cache(&[CacheStats::default(), CacheStats::default()]);
    assert!(s.fleet.pressure.is_zero());
    assert!(s.fleet.cache.is_zero());
    assert_eq!(s.fleet.cache.hit_rate(), 0.0);
    for replica in &s.per_replica {
        assert!(replica.pressure.is_zero());
        assert!(replica.cache.is_zero());
    }

    // A single non-zero replica breaks only the merged zero-ness.
    let active = CacheStats {
        lookups: 4,
        hits: 2,
        reused_tokens: 100,
        ..CacheStats::default()
    };
    s.attach_cache(&[CacheStats::default(), active]);
    assert!(!s.fleet.cache.is_zero());
    assert!(s.per_replica[0].cache.is_zero());
    assert_eq!(s.per_replica[1].cache, active);
    assert_eq!(s.fleet.cache.hits, 2);
}

fn cache_stats_strategy() -> impl Strategy<Value = (u64, u64, u64, u64, u64, u64)> {
    (
        0u64..1000,
        0u64..1000,
        0u64..100_000,
        0u64..100,
        0u64..100_000,
        0u64..1_000_000,
    )
}

proptest! {
    #![proptest_config(ci_config(32))]

    /// `bin_index` honours the half-open `[i·w, (i+1)·w)` contract for
    /// arbitrary widths and instants: the chosen bin's interval contains
    /// the instant (modulo the one-ulp boundary correction the function
    /// documents), and recording through a counter lands exactly there.
    #[test]
    fn bin_index_respects_half_open_intervals(
        width_m in 1u32..10_000,
        t_m in 0u64..10_000_000,
    ) {
        let w = width_m as f64 / 1000.0;
        let secs = t_m as f64 / 1000.0;
        let idx = bin_index(w, SimTime::from_secs(secs));
        // Post-correction invariants, exactly as documented.
        prop_assert!(secs < (idx as f64 + 1.0) * w, "t must precede the bin's end");
        prop_assert!(idx == 0 || (idx as f64) * w <= secs, "t must not precede the bin's start");

        let mut c = BinnedCounter::new(w);
        c.record(SimTime::from_secs(secs));
        prop_assert_eq!(c.bins().len(), idx + 1);
        prop_assert_eq!(c.bins()[idx], 1);
        prop_assert_eq!(c.total(), 1);
    }

    /// Merging counters pairwise equals recording every event into one
    /// counter — merge is the fold, empty counters included.
    #[test]
    fn merge_equals_single_counter_fold(
        streams in proptest::collection::vec(
            proptest::collection::vec(0u64..100_000, 0..20),
            1..5,
        ),
    ) {
        let w = 7.5;
        let mut folded = BinnedCounter::new(w);
        let mut merged = BinnedCounter::new(w);
        for stream in &streams {
            let mut partial = BinnedCounter::new(w);
            for &t_m in stream {
                let t = SimTime::from_secs(t_m as f64 / 100.0);
                folded.record(t);
                partial.record(t);
            }
            merged.merge(&partial);
        }
        prop_assert_eq!(merged, folded);
    }

    /// Merged fleet stats equal the fold of per-replica stats: every
    /// counter is the sum, every high-water mark the max, for both the
    /// pressure and cache blocks, over 1–6 replicas.
    #[test]
    fn merged_fleet_stats_equal_the_per_replica_fold(
        raw in proptest::collection::vec(cache_stats_strategy(), 1..6),
    ) {
        let caches: Vec<CacheStats> = raw
            .iter()
            .map(|&(lookups, hits, reused, evicted_e, evicted_t, high)| CacheStats {
                lookups,
                hits,
                reused_tokens: reused,
                saved_prefill_s: evicted_e as f64 / 10.0,
                evicted_entries: evicted_e,
                evicted_tokens: evicted_t,
                retained_tokens_high_water: high,
            })
            .collect();
        let pressures: Vec<PressureStats> = raw
            .iter()
            .map(|&(a, b, c, d, e, high)| PressureStats {
                preemptions: a,
                swap_out_events: b,
                swap_in_events: d,
                swap_out_bytes: c as f64,
                swap_in_bytes: e as f64,
                swap_stall_s: d as f64 / 100.0,
                max_outstanding_swapped_tokens: high,
            })
            .collect();

        let records: Vec<[RequestRecord; 1]> =
            (0..raw.len() as u64).map(|i| [record(i)]).collect();
        let borrowed: Vec<&[RequestRecord]> = records.iter().map(|r| r.as_slice()).collect();
        let mut summary =
            FleetSummary::from_replica_records("fleet", "w", 1.0, &borrowed, &slo());
        summary.attach_pressure(&pressures);
        summary.attach_cache(&caches);

        // The merged block must equal the explicit fold...
        prop_assert_eq!(
            summary.fleet.cache.lookups,
            caches.iter().map(|c| c.lookups).sum::<u64>()
        );
        prop_assert_eq!(
            summary.fleet.cache.hits,
            caches.iter().map(|c| c.hits).sum::<u64>()
        );
        prop_assert_eq!(
            summary.fleet.cache.reused_tokens,
            caches.iter().map(|c| c.reused_tokens).sum::<u64>()
        );
        prop_assert_eq!(
            summary.fleet.cache.evicted_tokens,
            caches.iter().map(|c| c.evicted_tokens).sum::<u64>()
        );
        prop_assert_eq!(
            summary.fleet.cache.retained_tokens_high_water,
            caches.iter().map(|c| c.retained_tokens_high_water).max().unwrap_or(0)
        );
        prop_assert_eq!(
            summary.fleet.pressure.preemptions,
            pressures.iter().map(|p| p.preemptions).sum::<u64>()
        );
        prop_assert_eq!(
            summary.fleet.pressure.max_outstanding_swapped_tokens,
            pressures.iter().map(|p| p.max_outstanding_swapped_tokens).max().unwrap_or(0)
        );
        // ...and per-replica records must round-trip untouched.
        for (summary, expected) in summary.per_replica.iter().zip(&caches) {
            prop_assert_eq!(&summary.cache, expected);
        }
        // Merging is associative with the running fold CacheStats::merge
        // implements (the fleet engine's merge path).
        let mut fold = CacheStats::default();
        for c in &caches {
            fold.merge(c);
        }
        prop_assert_eq!(summary.fleet.cache, fold);
    }
}
