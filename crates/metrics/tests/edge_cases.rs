//! Edge-case coverage for the aggregation paths the prefix-cache and
//! pressure rollups lean on.
//!
//! The fleet summary code merges per-replica `PressureStats`/`CacheStats`
//! records and per-replica latency samples; empty replicas, single-sample
//! distributions and all-zero counter blocks are precisely the shapes that
//! show up on lightly loaded fleets, so they are pinned here, plus a
//! proptest that the merged fleet stats always equal the fold of the
//! per-replica records (counters sum, high-water marks take the max).

use loong_metrics::prelude::*;
use loong_simcore::ids::RequestId;
use loong_simcore::time::SimTime;
use proptest::prelude::*;

const PROPTEST_SEED: u64 = 0x3e7a_11ed_9e57_0001;

fn ci_config(cases: u32) -> ProptestConfig {
    ProptestConfig {
        cases,
        failure_persistence: Some(FileFailurePersistence::Off),
        rng_seed: PROPTEST_SEED,
    }
}

fn record(id: u64) -> RequestRecord {
    RequestRecord {
        id: RequestId(id),
        arrival: SimTime::ZERO,
        input_len: 100,
        output_len: 10,
        prefill_start: SimTime::from_secs(0.1),
        first_token: SimTime::from_secs(0.5),
        finish: SimTime::from_secs(2.0),
        preemptions: 0,
        class: Default::default(),
    }
}

fn slo() -> SloSpec {
    SloSpec {
        per_token_s: 10.0,
        input_s: 10.0,
        output_s: 10.0,
    }
}

#[test]
fn empty_and_single_sample_percentiles_are_well_defined() {
    // Empty: all zeros, every percentile.
    for p in [0.0, 50.0, 90.0, 99.0, 100.0] {
        assert_eq!(percentile(&[], p), 0.0);
    }
    assert_eq!(mean(&[]), 0.0);
    let empty = LatencySummary::empty();
    assert_eq!(
        (empty.count, empty.mean, empty.p50, empty.p90),
        (0, 0.0, 0.0, 0.0)
    );

    // Single sample: every percentile is the sample, including the ends.
    for p in [0.0, 37.5, 50.0, 99.0, 100.0] {
        assert_eq!(percentile(&[7.25], p), 7.25);
    }
    let single = LatencySummary::from_values(&[7.25]);
    assert_eq!(single.count, 1);
    assert_eq!(single.p50, 7.25);
    assert_eq!(single.p99, 7.25);
    assert_eq!(single.max, 7.25);

    // Two samples: linear interpolation between closest ranks.
    assert_eq!(percentile(&[1.0, 3.0], 50.0), 2.0);
    assert_eq!(percentile(&[1.0, 3.0], 0.0), 1.0);
    assert_eq!(percentile(&[1.0, 3.0], 100.0), 3.0);
}

#[test]
fn timeseries_edges_are_well_defined() {
    // Empty counter: no bins, zero everything.
    let empty = BinnedCounter::new(10.0);
    assert!(empty.bins().is_empty());
    assert_eq!(empty.total(), 0);
    assert_eq!(empty.mean_per_bin(), 0.0);
    assert_eq!(empty.max_per_bin(), 0);

    // A single event at exactly t = 0 creates exactly one bin.
    let mut one = BinnedCounter::new(10.0);
    one.record(SimTime::ZERO);
    assert_eq!(one.bins(), &[1]);
    assert_eq!(one.mean_per_bin(), 1.0);

    // An event exactly on a bin boundary lands in the upper bin.
    let mut boundary = BinnedCounter::new(10.0);
    boundary.record(SimTime::from_secs(10.0));
    assert_eq!(boundary.bins(), &[0, 1]);

    // Zero-count record_many still materialises the bin but adds nothing.
    let mut zero = BinnedCounter::new(1.0);
    zero.record_many(SimTime::from_secs(3.5), 0);
    assert_eq!(zero.total(), 0);
    assert_eq!(zero.bins(), &[0, 0, 0, 0]);
    assert_eq!(zero.max_per_bin(), 0);
}

#[test]
fn fleet_rollup_of_all_zero_stats_stays_zero() {
    let r0 = [record(0)];
    let r1 = [record(1)];
    let mut s = FleetSummary::from_replica_records("fleet", "w", 1.0, &[&r0, &r1], &slo());
    s.attach_pressure(&[PressureStats::default(), PressureStats::default()]);
    s.attach_cache(&[CacheStats::default(), CacheStats::default()]);
    assert!(s.fleet.pressure.is_zero());
    assert!(s.fleet.cache.is_zero());
    assert_eq!(s.fleet.cache.hit_rate(), 0.0);
    for replica in &s.per_replica {
        assert!(replica.pressure.is_zero());
        assert!(replica.cache.is_zero());
    }

    // A single non-zero replica breaks only the merged zero-ness.
    let active = CacheStats {
        lookups: 4,
        hits: 2,
        reused_tokens: 100,
        ..CacheStats::default()
    };
    s.attach_cache(&[CacheStats::default(), active]);
    assert!(!s.fleet.cache.is_zero());
    assert!(s.per_replica[0].cache.is_zero());
    assert_eq!(s.per_replica[1].cache, active);
    assert_eq!(s.fleet.cache.hits, 2);
}

fn cache_stats_strategy() -> impl Strategy<Value = (u64, u64, u64, u64, u64, u64)> {
    (
        0u64..1000,
        0u64..1000,
        0u64..100_000,
        0u64..100,
        0u64..100_000,
        0u64..1_000_000,
    )
}

proptest! {
    #![proptest_config(ci_config(32))]

    /// Merged fleet stats equal the fold of per-replica stats: every
    /// counter is the sum, every high-water mark the max, for both the
    /// pressure and cache blocks, over 1–6 replicas.
    #[test]
    fn merged_fleet_stats_equal_the_per_replica_fold(
        raw in proptest::collection::vec(cache_stats_strategy(), 1..6),
    ) {
        let caches: Vec<CacheStats> = raw
            .iter()
            .map(|&(lookups, hits, reused, evicted_e, evicted_t, high)| CacheStats {
                lookups,
                hits,
                reused_tokens: reused,
                saved_prefill_s: evicted_e as f64 / 10.0,
                evicted_entries: evicted_e,
                evicted_tokens: evicted_t,
                retained_tokens_high_water: high,
            })
            .collect();
        let pressures: Vec<PressureStats> = raw
            .iter()
            .map(|&(a, b, c, d, e, high)| PressureStats {
                preemptions: a,
                swap_out_events: b,
                swap_in_events: d,
                swap_out_bytes: c as f64,
                swap_in_bytes: e as f64,
                swap_stall_s: d as f64 / 100.0,
                max_outstanding_swapped_tokens: high,
            })
            .collect();

        let records: Vec<[RequestRecord; 1]> =
            (0..raw.len() as u64).map(|i| [record(i)]).collect();
        let borrowed: Vec<&[RequestRecord]> = records.iter().map(|r| r.as_slice()).collect();
        let mut summary =
            FleetSummary::from_replica_records("fleet", "w", 1.0, &borrowed, &slo());
        summary.attach_pressure(&pressures);
        summary.attach_cache(&caches);

        // The merged block must equal the explicit fold...
        prop_assert_eq!(
            summary.fleet.cache.lookups,
            caches.iter().map(|c| c.lookups).sum::<u64>()
        );
        prop_assert_eq!(
            summary.fleet.cache.hits,
            caches.iter().map(|c| c.hits).sum::<u64>()
        );
        prop_assert_eq!(
            summary.fleet.cache.reused_tokens,
            caches.iter().map(|c| c.reused_tokens).sum::<u64>()
        );
        prop_assert_eq!(
            summary.fleet.cache.evicted_tokens,
            caches.iter().map(|c| c.evicted_tokens).sum::<u64>()
        );
        prop_assert_eq!(
            summary.fleet.cache.retained_tokens_high_water,
            caches.iter().map(|c| c.retained_tokens_high_water).max().unwrap_or(0)
        );
        prop_assert_eq!(
            summary.fleet.pressure.preemptions,
            pressures.iter().map(|p| p.preemptions).sum::<u64>()
        );
        prop_assert_eq!(
            summary.fleet.pressure.max_outstanding_swapped_tokens,
            pressures.iter().map(|p| p.max_outstanding_swapped_tokens).max().unwrap_or(0)
        );
        // ...and per-replica records must round-trip untouched.
        for (summary, expected) in summary.per_replica.iter().zip(&caches) {
            prop_assert_eq!(&summary.cache, expected);
        }
        // Merging is associative with the running fold CacheStats::merge
        // implements (the fleet engine's merge path).
        let mut fold = CacheStats::default();
        for c in &caches {
            fold.merge(c);
        }
        prop_assert_eq!(summary.fleet.cache, fold);
    }
}
