//! Fleet-level metric aggregation.
//!
//! A fleet run produces one set of request records per replica. The
//! fleet-level metrics the paper's deployment story cares about — aggregate
//! latency distributions, SLO attainment, trace throughput — must be
//! computed over the **merged** records (a per-replica mean of means would
//! mis-weight unevenly loaded replicas), while capacity questions need the
//! per-replica breakdown. [`FleetSummary`] carries both.

use crate::cache::CacheStats;
use crate::elasticity::ElasticityStats;
use crate::pressure::PressureStats;
use crate::record::RequestRecord;
use crate::reliability::{ReliabilityStats, SlaWindow};
use crate::slo::SloSpec;
use crate::summary::RunSummary;
use serde::{Deserialize, Serialize};

/// Aggregated metrics of one fleet run: the merged view plus a per-replica
/// breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSummary {
    /// Metrics over the union of every replica's records. Makespan — and
    /// therefore throughput — spans the whole fleet: earliest arrival to
    /// latest completion across replicas.
    pub fleet: RunSummary,
    /// Metrics of each replica over its own records, in replica-id order.
    pub per_replica: Vec<RunSummary>,
    /// Whole-run reliability counters. All-zero unless a failure schedule
    /// actually struck (armed-but-idle leaves no trace).
    pub reliability: ReliabilityStats,
    /// Time-resolved availability: the run cut into fixed windows, each
    /// with its completed/failed resolution counts. Empty unless attached
    /// by a reliability run.
    pub sla_windows: Vec<SlaWindow>,
    /// Whole-run elasticity counters. All-zero unless a scale event or
    /// shed decision actually fired (armed-but-idle leaves no trace).
    pub elasticity: ElasticityStats,
}

impl FleetSummary {
    /// Builds a fleet summary from per-replica record sets (replica-id
    /// order, borrowed — nothing is copied except into the one merged
    /// aggregation). `system` and `workload` label the merged summary;
    /// replica summaries get `workload · replica i/N`.
    ///
    /// `request_rate` is the rate offered to the whole fleet; each
    /// replica's summary reports its share of it, weighted by the
    /// replica's fraction of the merged completed records — under a skewed
    /// routing policy an idle replica reports zero, not `rate / N`.
    pub fn from_replica_records(
        system: &str,
        workload: &str,
        request_rate: f64,
        replica_records: &[&[RequestRecord]],
        slo: &SloSpec,
    ) -> Self {
        let replicas = replica_records.len();
        let merged: Vec<RequestRecord> = replica_records
            .iter()
            .flat_map(|records| records.iter().copied())
            .collect();
        let fleet = RunSummary::from_records(system, workload, request_rate, &merged, slo);
        let total = merged.len();
        let per_replica = replica_records
            .iter()
            .enumerate()
            .map(|(i, records)| {
                let share = if total == 0 {
                    0.0
                } else {
                    records.len() as f64 / total as f64
                };
                RunSummary::from_records(
                    system,
                    format!("{workload} · replica {i}/{replicas}"),
                    request_rate * share,
                    records,
                    slo,
                )
            })
            .collect();
        FleetSummary {
            fleet,
            per_replica,
            reliability: ReliabilityStats::default(),
            sla_windows: Vec::new(),
            elasticity: ElasticityStats::default(),
        }
    }

    /// Attaches per-replica memory-pressure counters (replica-id order) to
    /// the rollup: each replica summary gets its own record and the merged
    /// summary gets the fleet-wide accumulation.
    ///
    /// # Panics
    ///
    /// Panics if the slice length does not match the replica count.
    pub fn attach_pressure(&mut self, per_replica: &[PressureStats]) {
        assert_eq!(
            per_replica.len(),
            self.per_replica.len(),
            "one pressure record per replica"
        );
        let mut merged = PressureStats::default();
        for (summary, stats) in self.per_replica.iter_mut().zip(per_replica) {
            summary.pressure = *stats;
            merged.merge(stats);
        }
        self.fleet.pressure = merged;
    }

    /// Attaches per-replica prefix-cache counters (replica-id order) to the
    /// rollup, mirroring [`FleetSummary::attach_pressure`]: each replica
    /// summary gets its own record and the merged summary gets the
    /// fleet-wide accumulation.
    ///
    /// # Panics
    ///
    /// Panics if the slice length does not match the replica count.
    pub fn attach_cache(&mut self, per_replica: &[CacheStats]) {
        assert_eq!(
            per_replica.len(),
            self.per_replica.len(),
            "one cache record per replica"
        );
        let mut merged = CacheStats::default();
        for (summary, stats) in self.per_replica.iter_mut().zip(per_replica) {
            summary.cache = *stats;
            merged.merge(stats);
        }
        self.fleet.cache = merged;
    }

    /// Attaches the whole-run reliability ledger and the time-resolved
    /// availability windows to the rollup. Reliability is a fleet-scope
    /// phenomenon — a casualty's retries hop replicas — so unlike pressure
    /// and cache there is no per-replica split.
    pub fn attach_reliability(&mut self, stats: ReliabilityStats, windows: Vec<SlaWindow>) {
        self.reliability = stats;
        self.sla_windows = windows;
    }

    /// Attaches the whole-run elasticity ledger to the rollup. Like
    /// reliability, elasticity is fleet-scope (scale and shed decisions
    /// look at the whole fleet), so there is no per-replica split.
    pub fn attach_elasticity(&mut self, stats: ElasticityStats) {
        self.elasticity = stats;
    }

    /// Attaches a tracing recorder's per-phase time attribution to the
    /// merged summary. Attribution is accumulated fleet-wide by the
    /// recorder (a casualty's downtime belongs to no single replica), so
    /// like reliability and elasticity there is no per-replica split.
    pub fn attach_attribution(&mut self, attribution: crate::attribution::TimeAttribution) {
        self.fleet.attribution = attribution;
    }

    /// Success ratio over the whole run: completed over resolved requests,
    /// from the attached availability windows (1.0 when none resolved —
    /// matching [`SlaWindow::success_ratio`]).
    pub fn success_ratio(&self) -> f64 {
        let completed: u64 = self.sla_windows.iter().map(|w| w.completed).sum();
        let failed: u64 = self.sla_windows.iter().map(|w| w.failed).sum();
        if completed + failed == 0 {
            1.0
        } else {
            completed as f64 / (completed + failed) as f64
        }
    }

    /// Number of replicas in the fleet.
    pub fn replicas(&self) -> usize {
        self.per_replica.len()
    }

    /// Completed-request imbalance across replicas: the ratio of the most
    /// to the least loaded replica's completed count (1.0 = perfectly even;
    /// infinity if some replica completed nothing while another did).
    pub fn completion_imbalance(&self) -> f64 {
        let max = self.per_replica.iter().map(|s| s.completed).max();
        let min = self.per_replica.iter().map(|s| s.completed).min();
        match (max, min) {
            (Some(max), Some(min)) if max > 0 => max as f64 / (min as f64).max(f64::MIN_POSITIVE),
            _ => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loong_simcore::ids::RequestId;
    use loong_simcore::time::SimTime;

    fn record(id: u64, arrival: f64, finish: f64) -> RequestRecord {
        RequestRecord {
            id: RequestId(id),
            arrival: SimTime::from_secs(arrival),
            input_len: 100,
            output_len: 10,
            prefill_start: SimTime::from_secs(arrival + 0.1),
            first_token: SimTime::from_secs(arrival + 0.5),
            finish: SimTime::from_secs(finish),
            preemptions: 0,
            class: Default::default(),
        }
    }

    fn slo() -> SloSpec {
        SloSpec {
            per_token_s: 10.0,
            input_s: 10.0,
            output_s: 10.0,
        }
    }

    #[test]
    fn fleet_makespan_spans_all_replicas() {
        let r0 = [record(0, 0.0, 2.0)];
        let r1 = [record(1, 1.0, 9.0), record(2, 2.0, 4.0)];
        let s = FleetSummary::from_replica_records("fleet", "w", 2.0, &[&r0, &r1], &slo());
        assert_eq!(s.replicas(), 2);
        assert_eq!(s.fleet.completed, 3);
        // Earliest arrival 0.0 on replica 0, latest finish 9.0 on replica 1.
        assert!((s.fleet.makespan_s - 9.0).abs() < 1e-9);
        assert_eq!(s.per_replica[0].completed, 1);
        assert_eq!(s.per_replica[1].completed, 2);
        assert!((s.completion_imbalance() - 2.0).abs() < 1e-9);
        assert!(s.per_replica[1].workload.contains("replica 1/2"));
        // Per-replica offered rates are completed-weighted shares of the
        // fleet rate, and they sum back to it.
        assert!((s.per_replica[0].request_rate - 2.0 / 3.0).abs() < 1e-9);
        assert!((s.per_replica[1].request_rate - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_replicas_do_not_poison_the_merge() {
        let r0 = [record(0, 0.0, 2.0)];
        let s = FleetSummary::from_replica_records("fleet", "w", 1.0, &[&r0, &[]], &slo());
        assert_eq!(s.fleet.completed, 1);
        assert_eq!(s.per_replica[1].completed, 0);
        // A replica that served nothing reports zero offered rate, not a
        // phantom 1/N share.
        assert_eq!(s.per_replica[0].request_rate, 1.0);
        assert_eq!(s.per_replica[1].request_rate, 0.0);
        assert!(
            s.completion_imbalance() > 1e9,
            "max/0 is effectively infinite"
        );
    }

    #[test]
    fn pressure_rollup_sums_counters_and_maxes_watermark() {
        let r0 = [record(0, 0.0, 2.0)];
        let r1 = [record(1, 0.0, 2.0)];
        let mut s = FleetSummary::from_replica_records("fleet", "w", 1.0, &[&r0, &r1], &slo());
        assert!(s.fleet.pressure.is_zero());
        let p0 = PressureStats {
            preemptions: 2,
            swap_out_bytes: 5.0,
            max_outstanding_swapped_tokens: 100,
            ..PressureStats::default()
        };
        let p1 = PressureStats {
            swap_out_events: 1,
            swap_out_bytes: 3.0,
            max_outstanding_swapped_tokens: 400,
            ..PressureStats::default()
        };
        s.attach_pressure(&[p0, p1]);
        assert_eq!(s.per_replica[0].pressure, p0);
        assert_eq!(s.per_replica[1].pressure, p1);
        assert_eq!(s.fleet.pressure.preemptions, 2);
        assert_eq!(s.fleet.pressure.swap_out_events, 1);
        assert_eq!(s.fleet.pressure.swap_out_bytes, 8.0);
        assert_eq!(s.fleet.pressure.max_outstanding_swapped_tokens, 400);
    }

    #[test]
    fn reliability_rollup_attaches_ledger_and_windows() {
        let r0 = [record(0, 0.0, 2.0)];
        let mut s = FleetSummary::from_replica_records("fleet", "w", 1.0, &[&r0], &slo());
        assert!(s.reliability.is_zero());
        assert!(s.sla_windows.is_empty());
        assert_eq!(s.success_ratio(), 1.0);
        let stats = ReliabilityStats {
            crashes: 1,
            downtime_s: 10.0,
            retries_exhausted: 1,
            ..ReliabilityStats::default()
        };
        let windows = vec![
            SlaWindow {
                start_s: 0.0,
                end_s: 10.0,
                completed: 3,
                failed: 1,
            },
            SlaWindow {
                start_s: 10.0,
                end_s: 20.0,
                completed: 1,
                failed: 0,
            },
        ];
        s.attach_reliability(stats, windows);
        assert_eq!(s.reliability.crashes, 1);
        assert_eq!(s.sla_windows.len(), 2);
        assert!((s.success_ratio() - 4.0 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn success_ratio_conventions_are_pinned() {
        let r0 = [record(0, 0.0, 2.0)];
        let mut s = FleetSummary::from_replica_records("fleet", "w", 1.0, &[&r0], &slo());
        // No windows attached (a run the reliability tier never touched):
        // nothing resolved, so availability is identically 1.0, not 0/0.
        assert!(s.sla_windows.is_empty());
        assert_eq!(s.success_ratio(), 1.0);
        // Windows attached but all empty (idle horizon): still 1.0.
        s.attach_reliability(
            ReliabilityStats::default(),
            vec![SlaWindow {
                start_s: 0.0,
                end_s: 10.0,
                completed: 0,
                failed: 0,
            }],
        );
        assert_eq!(s.success_ratio(), 1.0);
        // Every resolution a failure: the ratio pins to exactly 0.0.
        s.attach_reliability(
            ReliabilityStats::default(),
            vec![SlaWindow {
                start_s: 0.0,
                end_s: 10.0,
                completed: 0,
                failed: 4,
            }],
        );
        assert_eq!(s.success_ratio(), 0.0);
    }

    #[test]
    fn elasticity_rollup_attaches_ledger() {
        let r0 = [record(0, 0.0, 2.0)];
        let mut s = FleetSummary::from_replica_records("fleet", "w", 1.0, &[&r0], &slo());
        assert!(s.elasticity.is_zero(), "armed-but-idle leaves no trace");
        let stats = ElasticityStats {
            scale_up_events: 1,
            replica_seconds: 40.0,
            shed_best_effort: 3,
            ..ElasticityStats::default()
        };
        s.attach_elasticity(stats);
        assert_eq!(s.elasticity.shed_total(), 3);
        assert_eq!(s.elasticity.replica_seconds, 40.0);
    }

    #[test]
    fn uniform_fleet_has_unit_imbalance() {
        let r0 = [record(0, 0.0, 2.0)];
        let r1 = [record(1, 0.0, 2.0)];
        let s = FleetSummary::from_replica_records("fleet", "w", 1.0, &[&r0, &r1], &slo());
        assert_eq!(s.completion_imbalance(), 1.0);
    }

    #[test]
    fn all_empty_fleet_is_all_zero() {
        let s = FleetSummary::from_replica_records("fleet", "w", 1.0, &[&[], &[]], &slo());
        assert_eq!(s.fleet.completed, 0);
        assert_eq!(s.per_replica[0].request_rate, 0.0);
        assert_eq!(s.completion_imbalance(), 1.0);
    }
}
