//! # loong-metrics
//!
//! Metrics collection and aggregation for LoongServe-RS experiments.
//!
//! * [`record`] — per-request lifecycle records and the normalised latency
//!   metrics derived from them,
//! * [`latency`] — means, percentiles and latency summaries,
//! * [`slo`] — SLO specifications, attainment and (P90) goodput,
//! * [`pressure`] — memory-pressure counters (preemptions, swap traffic),
//! * [`cache`] — prefix-cache counters (hit rate, reused tokens, saved
//!   prefill seconds, evictions),
//! * [`reliability`] — failure-injection KPIs: the whole-run reliability
//!   ledger (crashes, retries, re-prefilled tokens, MTTR) and windowed
//!   SLA/availability series,
//! * [`elasticity`] — autoscaling KPIs: the whole-run elasticity ledger
//!   (scale events, drains, shed-by-class, replica-seconds) and the
//!   headline SLO-goodput-per-replica-second metric,
//! * [`timeseries`] — binned event counters (e.g. scale-ups per 10 s),
//! * [`attribution`] — per-phase, per-class simulated-time attribution
//!   (the latency-breakdown denominator produced by the tracing tier),
//! * [`summary`] — per-run summaries and markdown comparison tables,
//! * [`fleet`] — fleet-level aggregation: merged metrics over every
//!   replica's records plus the per-replica breakdown.
//!
//! # Examples
//!
//! ```
//! use loong_metrics::prelude::*;
//! use loong_simcore::ids::RequestId;
//! use loong_simcore::time::SimTime;
//!
//! let record = RequestRecord {
//!     id: RequestId(0),
//!     arrival: SimTime::ZERO,
//!     input_len: 1000,
//!     output_len: 100,
//!     prefill_start: SimTime::from_secs(0.1),
//!     first_token: SimTime::from_secs(1.0),
//!     finish: SimTime::from_secs(6.0),
//!     preemptions: 0,
//!     class: Default::default(),
//! };
//! assert!(record.normalized_input_latency() <= 0.001);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod attribution;
pub mod cache;
pub mod elasticity;
pub mod fleet;
pub mod latency;
pub mod pressure;
pub mod record;
pub mod reliability;
pub mod slo;
pub mod summary;
pub mod timeseries;

pub use attribution::{PhaseSeconds, TimeAttribution};
pub use cache::CacheStats;
pub use elasticity::{slo_goodput_per_replica_second, ElasticityStats};
pub use fleet::FleetSummary;
pub use latency::{mean, percentile, LatencySummary};
pub use pressure::PressureStats;
pub use record::RequestRecord;
pub use reliability::{availability_windows, ReliabilityStats, SlaWindow};
pub use slo::{goodput, SloPoint, SloSpec};
pub use summary::RunSummary;
pub use timeseries::{bin_index, BinnedCounter};

/// Convenient glob-import of the most commonly used types.
pub mod prelude {
    pub use crate::attribution::{PhaseSeconds, TimeAttribution};
    pub use crate::cache::CacheStats;
    pub use crate::elasticity::{slo_goodput_per_replica_second, ElasticityStats};
    pub use crate::fleet::FleetSummary;
    pub use crate::latency::{mean, percentile, LatencySummary};
    pub use crate::pressure::PressureStats;
    pub use crate::record::RequestRecord;
    pub use crate::reliability::{availability_windows, ReliabilityStats, SlaWindow};
    pub use crate::slo::{goodput, SloPoint, SloSpec};
    pub use crate::summary::RunSummary;
    pub use crate::timeseries::{bin_index, BinnedCounter};
}
