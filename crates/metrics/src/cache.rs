//! Prefix-cache counters.
//!
//! One [`CacheStats`] record accumulates everything the prefix-cache tier
//! did during a run: lookups and hits at prefill dispatch, tokens adopted
//! instead of re-prefilled, the prefill seconds those adoptions saved (per
//! the cost model at the adopting group's parallel configuration), and
//! eviction traffic. A run with the tier disabled — or one that never
//! reused a prefix — reports the all-zero record, the observable half of
//! the tier's zero-cost-when-disabled invariant.

use serde::{Deserialize, Serialize};

/// Counters of prefix-cache activity for one run (or one fleet replica).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Prefill dispatches of conversation-tagged requests that consulted
    /// the prefix index.
    pub lookups: u64,
    /// Lookups that adopted a retained prefix.
    pub hits: u64,
    /// Prompt tokens adopted from the cache instead of being prefilled.
    pub reused_tokens: u64,
    /// Prefill seconds saved by adoption: the cost model's prediction for
    /// prefilling the reused tokens on the adopting group, summed over hits.
    pub saved_prefill_s: f64,
    /// Retained entries evicted (watermark or head-of-queue headroom).
    pub evicted_entries: u64,
    /// Tokens freed by those evictions.
    pub evicted_tokens: u64,
    /// High-water mark of tokens simultaneously retained by the cache.
    pub retained_tokens_high_water: u64,
}

impl CacheStats {
    /// Returns true if the run experienced no prefix-cache activity at all.
    pub fn is_zero(&self) -> bool {
        *self == CacheStats::default()
    }

    /// Fraction of lookups that hit, in `[0, 1]` (zero when no lookups).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Accumulates another record into this one (fleet rollups). Counters
    /// and seconds sum; the retained high-water mark takes the maximum,
    /// since replicas own disjoint device pools.
    pub fn merge(&mut self, other: &CacheStats) {
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.reused_tokens += other.reused_tokens;
        self.saved_prefill_s += other.saved_prefill_s;
        self.evicted_entries += other.evicted_entries;
        self.evicted_tokens += other.evicted_tokens;
        self.retained_tokens_high_water = self
            .retained_tokens_high_water
            .max(other.retained_tokens_high_water);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CacheStats {
        CacheStats {
            lookups: 8,
            hits: 6,
            reused_tokens: 1_200,
            saved_prefill_s: 0.25,
            evicted_entries: 1,
            evicted_tokens: 300,
            retained_tokens_high_water: 2_000,
        }
    }

    #[test]
    fn default_is_zero() {
        assert!(CacheStats::default().is_zero());
        assert!(!sample().is_zero());
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn hit_rate_is_hits_over_lookups() {
        assert!((sample().hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_counters_and_maxes_high_water() {
        let mut a = sample();
        let mut b = sample();
        b.retained_tokens_high_water = 5_000;
        a.merge(&b);
        assert_eq!(a.lookups, 16);
        assert_eq!(a.hits, 12);
        assert_eq!(a.reused_tokens, 2_400);
        assert!((a.saved_prefill_s - 0.5).abs() < 1e-12);
        assert_eq!(a.evicted_entries, 2);
        assert_eq!(a.retained_tokens_high_water, 5_000);
    }
}
