//! Binned time-series counters.
//!
//! Figure 13b of the paper plots the number of elastic scale-up operations
//! triggered per 10-second interval. [`BinnedCounter`] provides exactly
//! that: record events at simulated instants, then read back per-bin counts
//! and summary statistics. The observability tier's per-replica series
//! (completions, SLO hits, preemptions, cache events) are built on the same
//! type, and its gauge series share [`bin_index`] so every series agrees on
//! bin boundaries.

use loong_simcore::time::SimTime;
use serde::{Deserialize, Serialize};

/// Maps an instant to its bin under half-open `[i·w, (i+1)·w)` semantics.
///
/// `floor(t / w)` alone is not faithful to that contract in floating point:
/// with `w = 0.3`, the product `243.0 * w` divides back to
/// `242.999…` and floors into bin 242 even though the value *is* the bin-243
/// boundary (`t == 243 * w` exactly, as f64). The index is therefore
/// corrected against the interval itself, so an event exactly on a bin
/// boundary always lands in the upper bin — including the final one.
pub fn bin_index(bin_width_s: f64, t: SimTime) -> usize {
    let secs = t.as_secs();
    let mut idx = (secs / bin_width_s).floor().max(0.0) as usize;
    // Re-check against the half-open interval: division rounding can put
    // `idx` one bin below (boundary products) or above the true interval.
    if (idx as f64 + 1.0) * bin_width_s <= secs {
        idx += 1;
    } else if idx > 0 && (idx as f64) * bin_width_s > secs {
        idx -= 1;
    }
    idx
}

/// Counts events in fixed-width time bins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinnedCounter {
    /// Width of each bin in seconds.
    bin_width_s: f64,
    /// Event counts per bin, indexed by [`bin_index`].
    bins: Vec<u64>,
    /// Total number of recorded events.
    total: u64,
}

impl BinnedCounter {
    /// Creates a counter with the given bin width in seconds.
    ///
    /// # Panics
    ///
    /// Panics if the width is not positive and finite: a zero or negative
    /// width has no bins, and an infinite or NaN width would silently fold
    /// every event into bin 0 (`t / inf == 0`) while still passing a bare
    /// `> 0.0` check.
    pub fn new(bin_width_s: f64) -> Self {
        assert!(
            bin_width_s > 0.0 && bin_width_s.is_finite(),
            "bin width must be positive and finite"
        );
        BinnedCounter {
            bin_width_s,
            bins: Vec::new(),
            total: 0,
        }
    }

    /// Records one event at time `t`.
    pub fn record(&mut self, t: SimTime) {
        self.record_many(t, 1);
    }

    /// Records `count` events at time `t`.
    pub fn record_many(&mut self, t: SimTime, count: u64) {
        let idx = bin_index(self.bin_width_s, t);
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0);
        }
        self.bins[idx] += count;
        self.total += count;
    }

    /// Merges another counter into this one, bin-wise.
    ///
    /// Merging an **empty** counter is the identity regardless of its bin
    /// width (an empty counter carries no binned information, so widths
    /// need not agree — the shape every freshly constructed per-replica
    /// series has before its first event). Merging *into* an empty counter
    /// adopts the other counter's width along with its bins.
    ///
    /// # Panics
    ///
    /// Panics if both counters are non-empty with different bin widths:
    /// their bins index different intervals and adding them element-wise
    /// would be silently meaningless.
    pub fn merge(&mut self, other: &BinnedCounter) {
        if other.bins.is_empty() {
            return;
        }
        if self.bins.is_empty() {
            self.bin_width_s = other.bin_width_s;
        } else {
            assert!(
                self.bin_width_s == other.bin_width_s,
                "cannot merge counters with different bin widths ({} vs {})",
                self.bin_width_s,
                other.bin_width_s
            );
        }
        if other.bins.len() > self.bins.len() {
            self.bins.resize(other.bins.len(), 0);
        }
        for (dst, src) in self.bins.iter_mut().zip(&other.bins) {
            *dst += src;
        }
        self.total += other.total;
    }

    /// The bin width in seconds.
    pub fn bin_width(&self) -> f64 {
        self.bin_width_s
    }

    /// Per-bin counts from time zero to the last recorded event.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Total number of recorded events.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean events per bin over all bins up to the last event (the paper
    /// reports 7.12 scale-ups per 10 s on ShareGPT at 25 req/s).
    pub fn mean_per_bin(&self) -> f64 {
        if self.bins.is_empty() {
            return 0.0;
        }
        self.total as f64 / self.bins.len() as f64
    }

    /// Maximum events observed in any bin.
    pub fn max_per_bin(&self) -> u64 {
        self.bins.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_land_in_the_right_bins() {
        let mut c = BinnedCounter::new(10.0);
        c.record(SimTime::from_secs(1.0));
        c.record(SimTime::from_secs(9.9));
        c.record(SimTime::from_secs(10.0));
        c.record(SimTime::from_secs(25.0));
        assert_eq!(c.bins(), &[2, 1, 1]);
        assert_eq!(c.total(), 4);
        assert_eq!(c.max_per_bin(), 2);
    }

    #[test]
    fn mean_per_bin_counts_empty_bins() {
        let mut c = BinnedCounter::new(10.0);
        c.record(SimTime::from_secs(5.0));
        c.record(SimTime::from_secs(35.0));
        // Bins: [1, 0, 0, 1] -> mean 0.5.
        assert_eq!(c.mean_per_bin(), 0.5);
    }

    #[test]
    fn empty_counter_is_zero() {
        let c = BinnedCounter::new(10.0);
        assert_eq!(c.total(), 0);
        assert_eq!(c.mean_per_bin(), 0.0);
        assert_eq!(c.max_per_bin(), 0);
        assert!(c.bins().is_empty());
        assert_eq!(c.bin_width(), 10.0);
    }

    #[test]
    fn record_many_accumulates() {
        let mut c = BinnedCounter::new(1.0);
        c.record_many(SimTime::from_secs(0.5), 5);
        c.record_many(SimTime::from_secs(0.6), 2);
        assert_eq!(c.bins(), &[7]);
    }

    #[test]
    #[should_panic(expected = "bin width must be positive")]
    fn zero_width_rejected() {
        let _ = BinnedCounter::new(0.0);
    }
}
