//! Binned time-series counters.
//!
//! Figure 13b of the paper plots the number of elastic scale-up operations
//! triggered per 10-second interval. [`BinnedCounter`] provides exactly
//! that: record events at simulated instants, then read back per-bin counts
//! and summary statistics.

use loong_simcore::time::SimTime;
use serde::{Deserialize, Serialize};

/// Counts events in fixed-width time bins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinnedCounter {
    /// Width of each bin in seconds.
    bin_width_s: f64,
    /// Event counts per bin, indexed by `floor(t / bin_width)`.
    bins: Vec<u64>,
    /// Total number of recorded events.
    total: u64,
}

impl BinnedCounter {
    /// Creates a counter with the given bin width in seconds.
    ///
    /// # Panics
    ///
    /// Panics if the width is not positive.
    pub fn new(bin_width_s: f64) -> Self {
        assert!(bin_width_s > 0.0, "bin width must be positive");
        BinnedCounter {
            bin_width_s,
            bins: Vec::new(),
            total: 0,
        }
    }

    /// Records one event at time `t`.
    pub fn record(&mut self, t: SimTime) {
        self.record_many(t, 1);
    }

    /// Records `count` events at time `t`.
    pub fn record_many(&mut self, t: SimTime, count: u64) {
        let idx = (t.as_secs() / self.bin_width_s).floor() as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0);
        }
        self.bins[idx] += count;
        self.total += count;
    }

    /// The bin width in seconds.
    pub fn bin_width(&self) -> f64 {
        self.bin_width_s
    }

    /// Per-bin counts from time zero to the last recorded event.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Total number of recorded events.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean events per bin over all bins up to the last event (the paper
    /// reports 7.12 scale-ups per 10 s on ShareGPT at 25 req/s).
    pub fn mean_per_bin(&self) -> f64 {
        if self.bins.is_empty() {
            return 0.0;
        }
        self.total as f64 / self.bins.len() as f64
    }

    /// Maximum events observed in any bin.
    pub fn max_per_bin(&self) -> u64 {
        self.bins.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_land_in_the_right_bins() {
        let mut c = BinnedCounter::new(10.0);
        c.record(SimTime::from_secs(1.0));
        c.record(SimTime::from_secs(9.9));
        c.record(SimTime::from_secs(10.0));
        c.record(SimTime::from_secs(25.0));
        assert_eq!(c.bins(), &[2, 1, 1]);
        assert_eq!(c.total(), 4);
        assert_eq!(c.max_per_bin(), 2);
    }

    #[test]
    fn mean_per_bin_counts_empty_bins() {
        let mut c = BinnedCounter::new(10.0);
        c.record(SimTime::from_secs(5.0));
        c.record(SimTime::from_secs(35.0));
        // Bins: [1, 0, 0, 1] -> mean 0.5.
        assert_eq!(c.mean_per_bin(), 0.5);
    }

    #[test]
    fn empty_counter_is_zero() {
        let c = BinnedCounter::new(10.0);
        assert_eq!(c.total(), 0);
        assert_eq!(c.mean_per_bin(), 0.0);
        assert_eq!(c.max_per_bin(), 0);
        assert!(c.bins().is_empty());
        assert_eq!(c.bin_width(), 10.0);
    }

    #[test]
    fn record_many_accumulates() {
        let mut c = BinnedCounter::new(1.0);
        c.record_many(SimTime::from_secs(0.5), 5);
        c.record_many(SimTime::from_secs(0.6), 2);
        assert_eq!(c.bins(), &[7]);
    }

    #[test]
    #[should_panic(expected = "bin width must be positive")]
    fn zero_width_rejected() {
        let _ = BinnedCounter::new(0.0);
    }
}
