//! Elasticity KPIs for autoscaled fleet runs.
//!
//! Two things make an autoscaled fleet worth running: it should serve the
//! same SLO-compliant work with fewer **replica-seconds** than any static
//! fleet, and its scale events should be boring — drains that finish, cold
//! starts that arrive, shedding that only ever touches the classes it is
//! supposed to. [`ElasticityStats`] is the whole-run ledger of both, and
//! [`slo_goodput_per_replica_second`] is the headline efficiency metric the
//! `autoscale` bench gates on: SLO-met completions per replica-second,
//! directly comparable between an autoscaled fleet and static fleets of
//! every size.

use crate::record::RequestRecord;
use crate::slo::SloSpec;
use serde::{Deserialize, Serialize};

/// Whole-run elasticity counters of one fleet run.
///
/// All-zero when the elasticity tier is armed but never fires — mirroring
/// [`ReliabilityStats`](crate::reliability::ReliabilityStats), an
/// armed-but-idle tier leaves no trace in the rollup.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ElasticityStats {
    /// Scale-up decisions that activated at least one replica.
    pub scale_up_events: u64,
    /// Scale-down decisions that started at least one drain.
    pub scale_down_events: u64,
    /// Drains that ran to completion (the replica retired).
    pub drains_completed: u64,
    /// Total time replicas spent draining, in sim-seconds.
    pub total_drain_s: f64,
    /// Longest single drain, in sim-seconds.
    pub max_drain_s: f64,
    /// Replica-seconds of capacity the run paid for: the sum over replicas
    /// of their active span (activation to retirement, or to the end of the
    /// run). The denominator of the headline efficiency metric.
    pub replica_seconds: f64,
    /// Smallest number of simultaneously active replicas observed at a
    /// control boundary.
    pub min_active_replicas: u64,
    /// Largest number of simultaneously active replicas observed at a
    /// control boundary.
    pub max_active_replicas: u64,
    /// Interactive-class requests shed at admission.
    pub shed_interactive: u64,
    /// Standard-class requests shed at admission.
    pub shed_standard: u64,
    /// Best-effort-class requests shed at admission.
    pub shed_best_effort: u64,
    /// Requests rejected because their estimated queueing delay already
    /// exceeded the class deadline (a subset of the shed counts).
    pub deadline_rejections: u64,
    /// Total time scale-ups spent provisioning (decision to routable), in
    /// sim-seconds.
    pub provisioning_s: f64,
}

impl ElasticityStats {
    /// Whether every counter is zero — a run no scale event or shed
    /// decision touched.
    pub fn is_zero(&self) -> bool {
        *self == ElasticityStats::default()
    }

    /// Requests shed at admission, over all classes.
    pub fn shed_total(&self) -> u64 {
        self.shed_interactive + self.shed_standard + self.shed_best_effort
    }

    /// Mean drain duration in sim-seconds (0 when nothing drained).
    pub fn mean_drain_s(&self) -> f64 {
        if self.drains_completed == 0 {
            0.0
        } else {
            self.total_drain_s / self.drains_completed as f64
        }
    }
}

/// The headline efficiency metric of the elasticity tier: completions that
/// met the SLO, per replica-second of capacity paid for. An autoscaled
/// fleet justifies itself by beating every static fleet size on this number
/// over a diurnal trace. Returns 0.0 when no capacity was paid for
/// (`replica_seconds <= 0`) — an unpaid fleet serves nothing.
pub fn slo_goodput_per_replica_second(
    records: &[RequestRecord],
    slo: &SloSpec,
    replica_seconds: f64,
) -> f64 {
    if replica_seconds <= 0.0 {
        return 0.0;
    }
    let met = records.iter().filter(|r| slo.met_by(r)).count();
    met as f64 / replica_seconds
}

#[cfg(test)]
mod tests {
    use super::*;
    use loong_simcore::ids::RequestId;
    use loong_simcore::time::SimTime;

    fn record(id: u64, per_token: f64) -> RequestRecord {
        RequestRecord {
            id: RequestId(id),
            arrival: SimTime::ZERO,
            input_len: 50,
            output_len: 50,
            prefill_start: SimTime::ZERO,
            first_token: SimTime::from_secs(per_token * 25.0),
            finish: SimTime::from_secs(per_token * 100.0),
            preemptions: 0,
            class: Default::default(),
        }
    }

    fn slo() -> SloSpec {
        SloSpec {
            per_token_s: 1.0,
            input_s: 1.0,
            output_s: 2.0,
        }
    }

    #[test]
    fn zero_stats_report_zero() {
        let s = ElasticityStats::default();
        assert!(s.is_zero());
        assert_eq!(s.shed_total(), 0);
        assert_eq!(s.mean_drain_s(), 0.0);
    }

    #[test]
    fn derived_ratios_follow_the_counters() {
        let s = ElasticityStats {
            scale_up_events: 2,
            scale_down_events: 2,
            drains_completed: 2,
            total_drain_s: 30.0,
            max_drain_s: 20.0,
            shed_interactive: 1,
            shed_standard: 2,
            shed_best_effort: 7,
            ..ElasticityStats::default()
        };
        assert!(!s.is_zero());
        assert_eq!(s.shed_total(), 10);
        assert!((s.mean_drain_s() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn goodput_counts_only_slo_met_completions() {
        // Two records meet the SLO, one misses it; 50 replica-seconds.
        let records = [record(0, 0.5), record(1, 0.9), record(2, 5.0)];
        let g = slo_goodput_per_replica_second(&records, &slo(), 50.0);
        assert!((g - 2.0 / 50.0).abs() < 1e-12);
    }

    #[test]
    fn goodput_is_zero_without_capacity() {
        let records = [record(0, 0.5)];
        assert_eq!(slo_goodput_per_replica_second(&records, &slo(), 0.0), 0.0);
        assert_eq!(slo_goodput_per_replica_second(&records, &slo(), -1.0), 0.0);
        assert_eq!(slo_goodput_per_replica_second(&[], &slo(), 10.0), 0.0);
    }

    #[test]
    fn stats_serialise() {
        let s = ElasticityStats {
            replica_seconds: 123.5,
            min_active_replicas: 1,
            max_active_replicas: 4,
            ..ElasticityStats::default()
        };
        let json = serde_json::to_string(&s).expect("serialise");
        assert_eq!(s, serde_json::from_str(&json).expect("deserialise"));
    }
}
