//! Latency aggregation helpers.
//!
//! Small, dependency-free statistics used throughout the experiment
//! harness: means, percentiles and a compact summary of a latency sample.

use serde::{Deserialize, Serialize};

/// Mean of a slice, or zero for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// The `p`-th percentile (0–100) using linear interpolation between closest
/// ranks, or zero for an empty slice.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]` or any value is NaN.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!(
        (0.0..=100.0).contains(&p),
        "percentile must be in [0, 100], got {p}"
    );
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies must not be NaN"));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// A compact summary of a latency distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (P50).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum observed value.
    pub max: f64,
}

impl LatencySummary {
    /// Builds a summary from raw samples.
    pub fn from_values(values: &[f64]) -> Self {
        LatencySummary {
            count: values.len(),
            mean: mean(values),
            p50: percentile(values, 50.0),
            p90: percentile(values, 90.0),
            p99: percentile(values, 99.0),
            max: values.iter().copied().fold(0.0, f64::max),
        }
    }

    /// An all-zero summary for an empty sample.
    pub fn empty() -> Self {
        Self::from_values(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_percentiles_of_simple_sample() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(mean(&v), 50.5);
        assert!((percentile(&v, 50.0) - 50.5).abs() < 1e-9);
        assert!((percentile(&v, 90.0) - 90.1).abs() < 1e-9);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
    }

    #[test]
    fn empty_sample_yields_zeros() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(percentile(&[], 90.0), 0.0);
        let s = LatencySummary::empty();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99, 0.0);
    }

    #[test]
    fn single_sample_summary() {
        let s = LatencySummary::from_values(&[3.0]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.p99, 3.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn percentile_is_order_invariant() {
        let a = [5.0, 1.0, 4.0, 2.0, 3.0];
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&a, 75.0), percentile(&b, 75.0));
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn out_of_range_percentile_panics() {
        let _ = percentile(&[1.0], 150.0);
    }
}
