//! Per-run summaries and comparison helpers.
//!
//! A [`RunSummary`] condenses the request records of one simulation run into
//! the metrics the paper reports: mean normalised per-token / input / output
//! latency, throughput, and SLO attainment. The figure-reproduction benches
//! assemble tables of these summaries across systems and request rates.

use crate::attribution::TimeAttribution;
use crate::cache::CacheStats;
use crate::latency::LatencySummary;
use crate::pressure::PressureStats;
use crate::record::RequestRecord;
use crate::slo::SloSpec;
use serde::{Deserialize, Serialize};

/// Aggregated metrics of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Label of the serving system that produced the run.
    pub system: String,
    /// Label of the workload that was served.
    pub workload: String,
    /// Offered request rate in requests/second.
    pub request_rate: f64,
    /// Number of completed requests.
    pub completed: usize,
    /// Simulated makespan (first arrival to last completion) in seconds.
    pub makespan_s: f64,
    /// Achieved throughput in requests/second.
    pub throughput_rps: f64,
    /// Achieved throughput in total (input + output) tokens per second.
    pub throughput_tokens_per_s: f64,
    /// Input-token throughput in tokens/second.
    pub input_throughput_tokens_per_s: f64,
    /// Summary of normalised per-token latency (s/token).
    pub per_token_latency: LatencySummary,
    /// Summary of normalised input latency (s/token).
    pub input_latency: LatencySummary,
    /// Summary of normalised output latency (s/token).
    pub output_latency: LatencySummary,
    /// Fraction of requests meeting the SLO used for the run.
    pub slo_attainment: f64,
    /// Total number of preemptions across requests.
    pub preemptions: u64,
    /// Memory-pressure counters for the run (all-zero when the run never
    /// crossed a pressure watermark). Record-derived constructors leave
    /// this at zero; callers holding engine-level counters attach them via
    /// [`RunSummary::with_pressure`].
    pub pressure: PressureStats,
    /// Prefix-cache counters for the run (all-zero when the tier is
    /// disabled or never reused a prefix). Attached via
    /// [`RunSummary::with_cache`], like the pressure block.
    pub cache: CacheStats,
    /// Per-phase, per-class simulated-time attribution (all-zero unless a
    /// tracing recorder observed the run). Attached via
    /// [`RunSummary::with_attribution`].
    pub attribution: TimeAttribution,
}

impl RunSummary {
    /// Builds a summary from request records.
    ///
    /// Returns an all-zero summary when no requests completed (the caller
    /// typically treats that as an overloaded or failed run).
    pub fn from_records(
        system: impl Into<String>,
        workload: impl Into<String>,
        request_rate: f64,
        records: &[RequestRecord],
        slo: &SloSpec,
    ) -> Self {
        let system = system.into();
        let workload = workload.into();
        if records.is_empty() {
            return RunSummary {
                system,
                workload,
                request_rate,
                completed: 0,
                makespan_s: 0.0,
                throughput_rps: 0.0,
                throughput_tokens_per_s: 0.0,
                input_throughput_tokens_per_s: 0.0,
                per_token_latency: LatencySummary::empty(),
                input_latency: LatencySummary::empty(),
                output_latency: LatencySummary::empty(),
                slo_attainment: 0.0,
                preemptions: 0,
                pressure: PressureStats::default(),
                cache: CacheStats::default(),
                attribution: TimeAttribution::default(),
            };
        }
        let first_arrival = records
            .iter()
            .map(|r| r.arrival)
            .min()
            .expect("non-empty records");
        let last_finish = records
            .iter()
            .map(|r| r.finish)
            .max()
            .expect("non-empty records");
        let makespan_s = last_finish
            .saturating_since(first_arrival)
            .as_secs()
            .max(1e-9);
        let total_tokens: u64 = records.iter().map(|r| r.sequence_len()).sum();
        let total_input: u64 = records.iter().map(|r| r.input_len).sum();

        let per_token: Vec<f64> = records
            .iter()
            .map(|r| r.normalized_per_token_latency())
            .collect();
        let input: Vec<f64> = records
            .iter()
            .map(|r| r.normalized_input_latency())
            .collect();
        let output: Vec<f64> = records
            .iter()
            .map(|r| r.normalized_output_latency())
            .collect();

        RunSummary {
            system,
            workload,
            request_rate,
            completed: records.len(),
            makespan_s,
            throughput_rps: records.len() as f64 / makespan_s,
            throughput_tokens_per_s: total_tokens as f64 / makespan_s,
            input_throughput_tokens_per_s: total_input as f64 / makespan_s,
            per_token_latency: LatencySummary::from_values(&per_token),
            input_latency: LatencySummary::from_values(&input),
            output_latency: LatencySummary::from_values(&output),
            slo_attainment: slo.attainment(records),
            preemptions: records.iter().map(|r| u64::from(r.preemptions)).sum(),
            pressure: PressureStats::default(),
            cache: CacheStats::default(),
            attribution: TimeAttribution::default(),
        }
    }

    /// Attaches engine-level memory-pressure counters to the summary.
    pub fn with_pressure(mut self, pressure: PressureStats) -> Self {
        self.pressure = pressure;
        self
    }

    /// Attaches engine-level prefix-cache counters to the summary.
    pub fn with_cache(mut self, cache: CacheStats) -> Self {
        self.cache = cache;
        self
    }

    /// Attaches a tracing recorder's per-phase time attribution.
    pub fn with_attribution(mut self, attribution: TimeAttribution) -> Self {
        self.attribution = attribution;
        self
    }

    /// One line of a markdown comparison table.
    pub fn markdown_row(&self) -> String {
        format!(
            "| {} | {} | {:.3} | {} | {:.1} | {:.4} | {:.4} | {:.4} | {:.1}% |",
            self.system,
            self.workload,
            self.request_rate,
            self.completed,
            self.throughput_tokens_per_s,
            self.per_token_latency.mean,
            self.input_latency.mean,
            self.output_latency.mean,
            self.slo_attainment * 100.0
        )
    }

    /// Header matching [`Self::markdown_row`].
    pub fn markdown_header() -> String {
        "| system | workload | rate (req/s) | completed | tok/s | per-token (s) | input (s/tok) | output (s/tok) | SLO |\n|---|---|---|---|---|---|---|---|---|".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loong_simcore::ids::RequestId;
    use loong_simcore::time::SimTime;

    fn record(i: u64, arrival: f64, finish: f64) -> RequestRecord {
        RequestRecord {
            id: RequestId(i),
            arrival: SimTime::from_secs(arrival),
            input_len: 100,
            output_len: 10,
            prefill_start: SimTime::from_secs(arrival + 0.1),
            first_token: SimTime::from_secs(arrival + 0.5),
            finish: SimTime::from_secs(finish),
            preemptions: 1,
            class: Default::default(),
        }
    }

    fn slo() -> SloSpec {
        SloSpec {
            per_token_s: 10.0,
            input_s: 10.0,
            output_s: 10.0,
        }
    }

    #[test]
    fn summary_aggregates_throughput_and_latency() {
        let records = vec![record(0, 0.0, 2.0), record(1, 1.0, 5.0)];
        let s = RunSummary::from_records("LoongServe", "test", 1.0, &records, &slo());
        assert_eq!(s.completed, 2);
        assert!((s.makespan_s - 5.0).abs() < 1e-9);
        assert!((s.throughput_rps - 0.4).abs() < 1e-9);
        assert!((s.throughput_tokens_per_s - 220.0 / 5.0).abs() < 1e-9);
        assert_eq!(s.preemptions, 2);
        assert_eq!(s.slo_attainment, 1.0);
        assert!(s.per_token_latency.mean > 0.0);
    }

    #[test]
    fn empty_run_is_all_zero() {
        let s = RunSummary::from_records("X", "w", 2.0, &[], &slo());
        assert_eq!(s.completed, 0);
        assert_eq!(s.throughput_rps, 0.0);
        assert_eq!(s.slo_attainment, 0.0);
    }

    #[test]
    fn markdown_row_mentions_system_and_workload() {
        let records = vec![record(0, 0.0, 2.0)];
        let s = RunSummary::from_records("vLLM", "ShareGPT", 5.0, &records, &slo());
        let row = s.markdown_row();
        assert!(row.contains("vLLM"));
        assert!(row.contains("ShareGPT"));
        assert!(RunSummary::markdown_header().starts_with("| system"));
    }
}
