//! Reliability and availability KPIs for fleet runs under failure
//! injection.
//!
//! Two views of the same run. [`ReliabilityStats`] is the whole-run ledger:
//! how many crashes struck, what they cost in retries, re-prefilled tokens
//! and terminal failures, and how fast replicas came back
//! (mean-time-to-recovery). [`SlaWindow`] is the operator's time-resolved
//! view: the sim horizon cut into fixed windows, each reporting the success
//! ratio of the requests that *resolved* (completed or terminally failed)
//! inside it — the availability series an SLA dashboard would plot, and the
//! shape in which an outage is visible as a dip rather than averaged away.

use crate::record::RequestRecord;
use loong_simcore::time::SimTime;
use serde::{Deserialize, Serialize};

/// Whole-run reliability counters of one fleet run.
///
/// All-zero when the reliability tier is armed but no failure fires —
/// mirroring [`PressureStats`](crate::pressure::PressureStats), an armed
/// but idle tier leaves no trace in the rollup.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ReliabilityStats {
    /// Replica crash events that struck during the run.
    pub crashes: u64,
    /// Total replica downtime in sim-seconds (summed over replicas).
    pub downtime_s: f64,
    /// Request attempts killed by a crash (in-flight or queued on the
    /// crashed replica). One request can contribute several.
    pub failed_attempts: u64,
    /// Re-submissions scheduled under the retry budget.
    pub retries_scheduled: u64,
    /// Requests that exhausted their retry budget and failed terminally.
    pub retries_exhausted: u64,
    /// Prompt tokens prefilled *again* because of crash re-submissions:
    /// the sum of `input_len` over scheduled retries. The headline cost of
    /// a failure under long contexts.
    pub re_prefilled_tokens: u64,
    /// Requests that lost at least one attempt to a crash but eventually
    /// completed.
    pub recovered_requests: u64,
    /// Times a replica's circuit breaker tripped open.
    pub breaker_opens: u64,
}

impl ReliabilityStats {
    /// Whether every counter is zero — a run no failure touched.
    pub fn is_zero(&self) -> bool {
        *self == ReliabilityStats::default()
    }

    /// Accumulates `other` into `self` (fleet-level rollup).
    pub fn merge(&mut self, other: &ReliabilityStats) {
        self.crashes += other.crashes;
        self.downtime_s += other.downtime_s;
        self.failed_attempts += other.failed_attempts;
        self.retries_scheduled += other.retries_scheduled;
        self.retries_exhausted += other.retries_exhausted;
        self.re_prefilled_tokens += other.re_prefilled_tokens;
        self.recovered_requests += other.recovered_requests;
        self.breaker_opens += other.breaker_opens;
    }

    /// Mean time-to-recovery in sim-seconds: average outage length over
    /// the crashes that struck (0 when none did).
    pub fn mean_time_to_recovery_s(&self) -> f64 {
        if self.crashes == 0 {
            0.0
        } else {
            self.downtime_s / self.crashes as f64
        }
    }
}

/// One availability window: the requests that *resolved* — completed or
/// terminally failed — within `[start_s, end_s)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlaWindow {
    /// Window start on the sim clock, in seconds (inclusive).
    pub start_s: f64,
    /// Window end on the sim clock, in seconds (exclusive).
    pub end_s: f64,
    /// Requests that completed inside the window (by finish time).
    pub completed: u64,
    /// Requests that terminally failed inside the window.
    pub failed: u64,
}

impl SlaWindow {
    /// Success ratio of the window: completed over resolved. A window in
    /// which nothing resolved reports 1.0 — an idle service is up, and the
    /// convention keeps a zero-failure run's availability identically 1.0
    /// in every window.
    pub fn success_ratio(&self) -> f64 {
        let resolved = self.completed + self.failed;
        if resolved == 0 {
            1.0
        } else {
            self.completed as f64 / resolved as f64
        }
    }
}

/// Cuts the run into fixed `window_s`-second windows and buckets every
/// resolution: completions by record finish time, terminal failures by the
/// instant the retry budget ran out. Windows tile `[0, horizon)` where the
/// horizon is the latest resolution instant; an empty run yields no
/// windows.
///
/// # Panics
///
/// Panics unless `window_s` is positive.
pub fn availability_windows(
    window_s: f64,
    records: &[RequestRecord],
    failures: &[SimTime],
) -> Vec<SlaWindow> {
    assert!(window_s > 0.0, "window must be positive");
    let horizon = records
        .iter()
        .map(|r| r.finish)
        .chain(failures.iter().copied())
        .max()
        .map(|t| t.as_secs());
    let Some(horizon) = horizon else {
        return Vec::new();
    };
    let count = (horizon / window_s).floor() as usize + 1;
    let mut windows: Vec<SlaWindow> = (0..count)
        .map(|i| SlaWindow {
            start_s: i as f64 * window_s,
            end_s: (i + 1) as f64 * window_s,
            completed: 0,
            failed: 0,
        })
        .collect();
    let index = |t: SimTime| ((t.as_secs() / window_s).floor() as usize).min(count - 1);
    for record in records {
        windows[index(record.finish)].completed += 1;
    }
    for &failure in failures {
        windows[index(failure)].failed += 1;
    }
    windows
}

#[cfg(test)]
mod tests {
    use super::*;
    use loong_simcore::ids::RequestId;

    fn record(id: u64, finish: f64) -> RequestRecord {
        RequestRecord {
            id: RequestId(id),
            arrival: SimTime::ZERO,
            input_len: 100,
            output_len: 10,
            prefill_start: SimTime::from_secs(0.1),
            first_token: SimTime::from_secs(0.5),
            finish: SimTime::from_secs(finish),
            preemptions: 0,
            class: Default::default(),
        }
    }

    #[test]
    fn zero_stats_report_zero_and_merge_accumulates() {
        let mut a = ReliabilityStats::default();
        assert!(a.is_zero());
        assert_eq!(a.mean_time_to_recovery_s(), 0.0);
        let b = ReliabilityStats {
            crashes: 2,
            downtime_s: 30.0,
            failed_attempts: 3,
            retries_scheduled: 2,
            retries_exhausted: 1,
            re_prefilled_tokens: 4_000,
            recovered_requests: 1,
            breaker_opens: 1,
        };
        a.merge(&b);
        a.merge(&b);
        assert!(!a.is_zero());
        assert_eq!(a.crashes, 4);
        assert_eq!(a.re_prefilled_tokens, 8_000);
        assert!((a.mean_time_to_recovery_s() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn windows_tile_the_run_and_bucket_resolutions() {
        let records = [record(0, 5.0), record(1, 12.0), record(2, 14.9)];
        let failures = [SimTime::from_secs(13.0)];
        let windows = availability_windows(10.0, &records, &failures);
        assert_eq!(windows.len(), 2);
        assert_eq!((windows[0].completed, windows[0].failed), (1, 0));
        assert_eq!((windows[1].completed, windows[1].failed), (2, 1));
        assert_eq!(windows[0].success_ratio(), 1.0);
        assert!((windows[1].success_ratio() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(windows[1].start_s, 10.0);
        assert_eq!(windows[1].end_s, 20.0);
    }

    #[test]
    fn idle_windows_count_as_available() {
        // One completion at t=25 leaves windows 0 and 1 empty: both must
        // report availability 1.0, not 0/0.
        let windows = availability_windows(10.0, &[record(0, 25.0)], &[]);
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[0].success_ratio(), 1.0);
        assert_eq!(windows[1].success_ratio(), 1.0);
        assert_eq!(windows[2].completed, 1);
    }

    #[test]
    fn empty_run_has_no_windows() {
        assert!(availability_windows(10.0, &[], &[]).is_empty());
    }

    #[test]
    fn mttr_conventions_are_pinned() {
        // Zero crashes: MTTR is 0.0 by convention, never 0/0.
        let none = ReliabilityStats::default();
        assert_eq!(none.mean_time_to_recovery_s(), 0.0);
        // A crash that never recovered within the run: its outage clamps to
        // the horizon, so downtime can legitimately be 0 (crash at the very
        // end). MTTR must stay finite — 0.0, not NaN.
        let at_horizon = ReliabilityStats {
            crashes: 1,
            downtime_s: 0.0,
            ..ReliabilityStats::default()
        };
        let mttr = at_horizon.mean_time_to_recovery_s();
        assert!(mttr.is_finite());
        assert_eq!(mttr, 0.0);
        // Attempts with zero successes leave the ledger's derived values
        // finite too: all counters, no ratios that can divide by zero.
        let hopeless = ReliabilityStats {
            crashes: 2,
            downtime_s: 50.0,
            failed_attempts: 5,
            retries_scheduled: 3,
            retries_exhausted: 3,
            recovered_requests: 0,
            ..ReliabilityStats::default()
        };
        assert!((hopeless.mean_time_to_recovery_s() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn failures_only_runs_still_produce_windows() {
        // No completions at all — every resolution is a terminal failure.
        // The horizon comes from the failure instants and every window's
        // success ratio pins to 0.0 (or 1.0 where nothing resolved).
        let failures = [SimTime::from_secs(5.0), SimTime::from_secs(25.0)];
        let windows = availability_windows(10.0, &[], &failures);
        assert_eq!(windows.len(), 3);
        assert_eq!((windows[0].completed, windows[0].failed), (0, 1));
        assert_eq!(windows[0].success_ratio(), 0.0);
        assert_eq!(windows[1].success_ratio(), 1.0, "idle window is up");
        assert_eq!((windows[2].completed, windows[2].failed), (0, 1));
    }
}
