//! Per-request latency records.
//!
//! The serving engine fills in one [`RequestRecord`] per request as it moves
//! through the system. All of the paper's metrics — normalised per-token
//! latency, normalised input (prefill) latency, normalised output (decode)
//! latency, SLO attainment and goodput — derive from these records.

use loong_simcore::class::TrafficClass;
use loong_simcore::ids::RequestId;
use loong_simcore::time::SimTime;
use serde::{Deserialize, Serialize};

/// The lifecycle timestamps and sizes of one served request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// Request identifier.
    pub id: RequestId,
    /// Arrival at the serving frontend.
    pub arrival: SimTime,
    /// Prompt length in tokens.
    pub input_len: u64,
    /// Generated length in tokens.
    pub output_len: u64,
    /// Instant the prefill iteration containing this request started.
    pub prefill_start: SimTime,
    /// Instant the first output token was produced (end of prefill).
    pub first_token: SimTime,
    /// Instant the last output token was produced.
    pub finish: SimTime,
    /// Number of times the request was preempted/evicted and later resumed.
    pub preemptions: u32,
    /// The service class the request arrived under — carried through from
    /// the request so per-class reporting never needs the originating trace
    /// (streamed runs have no materialised trace to look classes up in).
    /// Defaults to [`TrafficClass::Interactive`], the class of every
    /// pre-elasticity record.
    pub class: TrafficClass,
}

impl RequestRecord {
    /// End-to-end latency from arrival to the last token.
    pub fn end_to_end_latency(&self) -> f64 {
        self.finish.saturating_since(self.arrival).as_secs()
    }

    /// Queueing delay from arrival until the prefill phase started.
    pub fn queueing_delay(&self) -> f64 {
        self.prefill_start.saturating_since(self.arrival).as_secs()
    }

    /// Input (prefill-phase) latency: arrival to first output token. This is
    /// the "time to first token" the paper normalises by the input length.
    pub fn input_latency(&self) -> f64 {
        self.first_token.saturating_since(self.arrival).as_secs()
    }

    /// Output (decode-phase) latency: first token to last token.
    pub fn output_latency(&self) -> f64 {
        self.finish.saturating_since(self.first_token).as_secs()
    }

    /// Total sequence length (prompt + generated).
    pub fn sequence_len(&self) -> u64 {
        self.input_len + self.output_len
    }

    /// End-to-end latency divided by the sequence length (the paper's
    /// "normalised per-token latency").
    pub fn normalized_per_token_latency(&self) -> f64 {
        self.end_to_end_latency() / self.sequence_len().max(1) as f64
    }

    /// Input latency divided by the input length (the paper's "normalised
    /// input latency").
    pub fn normalized_input_latency(&self) -> f64 {
        self.input_latency() / self.input_len.max(1) as f64
    }

    /// Output latency divided by the output length (the paper's "normalised
    /// output latency").
    pub fn normalized_output_latency(&self) -> f64 {
        self.output_latency() / self.output_len.max(1) as f64
    }

    /// Validates that the timestamps are causally ordered.
    pub fn validate(&self) -> Result<(), String> {
        if self.prefill_start < self.arrival {
            return Err(format!("{}: prefill started before arrival", self.id));
        }
        if self.first_token < self.prefill_start {
            return Err(format!("{}: first token before prefill start", self.id));
        }
        if self.finish < self.first_token {
            return Err(format!("{}: finished before first token", self.id));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> RequestRecord {
        RequestRecord {
            id: RequestId(0),
            arrival: SimTime::from_secs(1.0),
            input_len: 1000,
            output_len: 100,
            prefill_start: SimTime::from_secs(2.0),
            first_token: SimTime::from_secs(4.0),
            finish: SimTime::from_secs(9.0),
            preemptions: 0,
            class: TrafficClass::default(),
        }
    }

    #[test]
    fn latencies_derive_from_timestamps() {
        let r = record();
        assert_eq!(r.end_to_end_latency(), 8.0);
        assert_eq!(r.queueing_delay(), 1.0);
        assert_eq!(r.input_latency(), 3.0);
        assert_eq!(r.output_latency(), 5.0);
        assert_eq!(r.sequence_len(), 1100);
    }

    #[test]
    fn normalized_metrics_divide_by_lengths() {
        let r = record();
        assert!((r.normalized_per_token_latency() - 8.0 / 1100.0).abs() < 1e-12);
        assert!((r.normalized_input_latency() - 3.0 / 1000.0).abs() < 1e-12);
        assert!((r.normalized_output_latency() - 5.0 / 100.0).abs() < 1e-12);
    }

    #[test]
    fn validation_catches_causality_violations() {
        let mut r = record();
        assert!(r.validate().is_ok());
        r.first_token = SimTime::from_secs(1.5);
        assert!(r.validate().is_err());
    }
}
