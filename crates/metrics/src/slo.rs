//! Service-level objectives, attainment and goodput.
//!
//! Following the paper (§7.1), systems are compared by the maximum request
//! rate they can sustain while keeping normalised latency within an SLO set
//! to a multiple (25×) of the unloaded inference latency. Figure 12 and 13a
//! additionally report **P90 goodput**: the highest request rate at which at
//! least 90% of requests meet the SLO.

use crate::record::RequestRecord;
use serde::{Deserialize, Serialize};

/// A latency service-level objective on normalised latencies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloSpec {
    /// Maximum acceptable normalised per-token latency (s/token).
    pub per_token_s: f64,
    /// Maximum acceptable normalised input latency (s/token).
    pub input_s: f64,
    /// Maximum acceptable normalised output latency (s/token).
    pub output_s: f64,
}

impl SloSpec {
    /// The scale factor the paper applies to the unloaded latency.
    pub const PAPER_SCALE: f64 = 25.0;

    /// Builds an SLO as `scale ×` a baseline (unloaded) latency profile.
    pub fn scaled_from_baseline(
        baseline_per_token_s: f64,
        baseline_input_s: f64,
        baseline_output_s: f64,
        scale: f64,
    ) -> Self {
        assert!(scale > 0.0, "SLO scale must be positive");
        SloSpec {
            per_token_s: baseline_per_token_s * scale,
            input_s: baseline_input_s * scale,
            output_s: baseline_output_s * scale,
        }
    }

    /// A generous default SLO for the LWM-1M model on A800s, used when no
    /// measured baseline is available: 25× a typical unloaded profile.
    pub fn default_for_lwm() -> Self {
        SloSpec::scaled_from_baseline(0.05, 0.002, 0.05, Self::PAPER_SCALE)
    }

    /// Returns true if a request met every component of the SLO.
    pub fn met_by(&self, r: &RequestRecord) -> bool {
        r.normalized_per_token_latency() <= self.per_token_s
            && r.normalized_input_latency() <= self.input_s
            && r.normalized_output_latency() <= self.output_s
    }

    /// Fraction of requests meeting the SLO (1.0 for an empty set, matching
    /// the convention that an idle system violates nothing).
    pub fn attainment(&self, records: &[RequestRecord]) -> f64 {
        if records.is_empty() {
            return 1.0;
        }
        let met = records.iter().filter(|r| self.met_by(r)).count();
        met as f64 / records.len() as f64
    }
}

/// A single point on a rate-sweep curve: the offered load and the fraction
/// of requests that met the SLO at that load.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloPoint {
    /// Offered request rate in requests/second.
    pub request_rate: f64,
    /// Fraction of requests that met the SLO.
    pub attainment: f64,
    /// Achieved throughput in requests/second (completed / makespan).
    pub throughput: f64,
}

/// Computes the P-`target` goodput from a rate sweep: the highest offered
/// rate whose attainment is at least `target` (e.g. 0.9 for P90 goodput).
/// Linear interpolation is applied between the last passing and first
/// failing point, matching how goodput is usually read off such curves.
/// Returns 0.0 if even the lowest rate misses the target.
pub fn goodput(points: &[SloPoint], target: f64) -> f64 {
    assert!((0.0..=1.0).contains(&target), "target must be a fraction");
    let mut sorted: Vec<SloPoint> = points.to_vec();
    sorted.sort_by(|a, b| {
        a.request_rate
            .partial_cmp(&b.request_rate)
            .expect("rates are finite")
    });
    let mut best = 0.0f64;
    for i in 0..sorted.len() {
        if sorted[i].attainment >= target {
            best = sorted[i].request_rate;
        } else {
            // Interpolate between the previous passing point and this one.
            if i > 0 && sorted[i - 1].attainment >= target {
                let (lo, hi) = (sorted[i - 1], sorted[i]);
                let span = hi.attainment - lo.attainment;
                if span.abs() > 1e-12 {
                    let frac = (target - lo.attainment) / span;
                    best = best.max(lo.request_rate + frac * (hi.request_rate - lo.request_rate));
                }
            }
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use loong_simcore::ids::RequestId;
    use loong_simcore::time::SimTime;

    fn record(per_token: f64) -> RequestRecord {
        // 100-token sequence with the requested per-token latency; input and
        // output latencies scaled to stay comfortably within their SLOs.
        RequestRecord {
            id: RequestId(0),
            arrival: SimTime::ZERO,
            input_len: 50,
            output_len: 50,
            prefill_start: SimTime::ZERO,
            first_token: SimTime::from_secs(per_token * 25.0),
            finish: SimTime::from_secs(per_token * 100.0),
            preemptions: 0,
            class: Default::default(),
        }
    }

    fn slo() -> SloSpec {
        SloSpec {
            per_token_s: 1.0,
            input_s: 1.0,
            output_s: 2.0,
        }
    }

    #[test]
    fn attainment_counts_passing_requests() {
        let records = vec![record(0.5), record(0.9), record(1.5)];
        let a = slo().attainment(&records);
        assert!((a - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_set_attains_fully() {
        assert_eq!(slo().attainment(&[]), 1.0);
    }

    #[test]
    fn scaled_slo_multiplies_baseline() {
        let s = SloSpec::scaled_from_baseline(0.01, 0.001, 0.02, 25.0);
        assert!((s.per_token_s - 0.25).abs() < 1e-12);
        assert!((s.input_s - 0.025).abs() < 1e-12);
        assert!((s.output_s - 0.5).abs() < 1e-12);
    }

    #[test]
    fn goodput_finds_the_knee() {
        let points = vec![
            SloPoint {
                request_rate: 1.0,
                attainment: 1.0,
                throughput: 1.0,
            },
            SloPoint {
                request_rate: 2.0,
                attainment: 0.95,
                throughput: 2.0,
            },
            SloPoint {
                request_rate: 4.0,
                attainment: 0.5,
                throughput: 3.0,
            },
        ];
        let g = goodput(&points, 0.9);
        // Interpolated between 2.0 (95%) and 4.0 (50%).
        assert!(g > 2.0 && g < 3.0, "goodput {g}");
    }

    #[test]
    fn goodput_zero_when_always_failing() {
        let points = vec![SloPoint {
            request_rate: 1.0,
            attainment: 0.1,
            throughput: 0.5,
        }];
        assert_eq!(goodput(&points, 0.9), 0.0);
    }

    #[test]
    fn goodput_full_when_never_failing() {
        let points = vec![
            SloPoint {
                request_rate: 1.0,
                attainment: 1.0,
                throughput: 1.0,
            },
            SloPoint {
                request_rate: 8.0,
                attainment: 0.93,
                throughput: 7.5,
            },
        ];
        assert_eq!(goodput(&points, 0.9), 8.0);
    }

    #[test]
    fn goodput_is_order_invariant() {
        let a = vec![
            SloPoint {
                request_rate: 4.0,
                attainment: 0.5,
                throughput: 3.0,
            },
            SloPoint {
                request_rate: 1.0,
                attainment: 1.0,
                throughput: 1.0,
            },
            SloPoint {
                request_rate: 2.0,
                attainment: 0.95,
                throughput: 2.0,
            },
        ];
        let mut b = a.clone();
        b.reverse();
        assert_eq!(goodput(&a, 0.9), goodput(&b, 0.9));
    }
}
