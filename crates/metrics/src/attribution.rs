//! Per-phase simulated-time attribution.
//!
//! The observability tier answers "*where did the latency go?*" by folding
//! every request's lifecycle spans into per-phase, per-class accumulators:
//! the sum of simulated seconds each traffic class spent queued, prefilling,
//! decoding, swapping, migrating, re-prefilling after a crash retry, or
//! waiting out retry backoff. The totals are the denominator of the
//! latency-breakdown tables in EXPERIMENTS.md and ride on
//! [`RunSummary`]/[`FleetSummary`] so every report can show them.
//!
//! [`RunSummary`]: crate::summary::RunSummary
//! [`FleetSummary`]: crate::fleet::FleetSummary

use loong_simcore::class::TrafficClass;
use serde::{Deserialize, Serialize};

/// Simulated seconds a set of requests spent in each lifecycle phase.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseSeconds {
    /// Waiting for admission or dispatch (including decode-batch waits
    /// before the first token).
    pub queued_s: f64,
    /// First-attempt prefill (full or chunked) execution.
    pub prefill_s: f64,
    /// Decode iterations, including inter-iteration batch gaps.
    pub decode_s: f64,
    /// Swap-out transfer + parked-on-host + swap-in transfer.
    pub swap_s: f64,
    /// Elastic KV migration.
    pub migrate_s: f64,
    /// Prefill executed by retry attempts after a replica crash — work the
    /// fleet paid twice.
    pub retry_prefill_s: f64,
    /// Retry backoff: the gap between a casualty's crash and its retry
    /// re-entering admission.
    pub downtime_s: f64,
}

impl PhaseSeconds {
    /// Total attributed seconds across all phases.
    pub fn total_s(&self) -> f64 {
        self.queued_s
            + self.prefill_s
            + self.decode_s
            + self.swap_s
            + self.migrate_s
            + self.retry_prefill_s
            + self.downtime_s
    }

    /// Adds another accumulator into this one, phase-wise.
    pub fn add(&mut self, other: &PhaseSeconds) {
        self.queued_s += other.queued_s;
        self.prefill_s += other.prefill_s;
        self.decode_s += other.decode_s;
        self.swap_s += other.swap_s;
        self.migrate_s += other.migrate_s;
        self.retry_prefill_s += other.retry_prefill_s;
        self.downtime_s += other.downtime_s;
    }

    /// True when no time has been attributed.
    pub fn is_zero(&self) -> bool {
        self.total_s() == 0.0
    }
}

/// Per-class time attribution for one run (engine or fleet scope).
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeAttribution {
    /// Interactive (chat-style) traffic.
    pub interactive: PhaseSeconds,
    /// Standard (multi-turn assistant) traffic.
    pub standard: PhaseSeconds,
    /// Best-effort (long-document / batch) traffic.
    pub best_effort: PhaseSeconds,
}

impl TimeAttribution {
    /// The accumulator for a traffic class.
    pub fn class(&self, class: TrafficClass) -> &PhaseSeconds {
        match class {
            TrafficClass::Interactive => &self.interactive,
            TrafficClass::Standard => &self.standard,
            TrafficClass::BestEffort => &self.best_effort,
        }
    }

    /// Mutable accumulator for a traffic class.
    pub fn class_mut(&mut self, class: TrafficClass) -> &mut PhaseSeconds {
        match class {
            TrafficClass::Interactive => &mut self.interactive,
            TrafficClass::Standard => &mut self.standard,
            TrafficClass::BestEffort => &mut self.best_effort,
        }
    }

    /// The class-summed accumulator.
    pub fn total(&self) -> PhaseSeconds {
        let mut t = self.interactive;
        t.add(&self.standard);
        t.add(&self.best_effort);
        t
    }

    /// Adds another attribution into this one, class- and phase-wise.
    pub fn add(&mut self, other: &TimeAttribution) {
        self.interactive.add(&other.interactive);
        self.standard.add(&other.standard);
        self.best_effort.add(&other.best_effort);
    }

    /// True when no time has been attributed to any class.
    pub fn is_zero(&self) -> bool {
        self.interactive.is_zero() && self.standard.is_zero() && self.best_effort.is_zero()
    }

    /// Renders the latency-breakdown table: one row per class with
    /// non-zero attribution plus a totals row, seconds per phase.
    pub fn markdown_table(&self) -> String {
        let mut out = String::from(
            "| class | queued_s | prefill_s | decode_s | swap_s | migrate_s | \
             retry_prefill_s | downtime_s | total_s |\n\
             |---|---|---|---|---|---|---|---|---|\n",
        );
        let mut row = |label: &str, p: &PhaseSeconds| {
            out.push_str(&format!(
                "| {label} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} |\n",
                p.queued_s,
                p.prefill_s,
                p.decode_s,
                p.swap_s,
                p.migrate_s,
                p.retry_prefill_s,
                p.downtime_s,
                p.total_s(),
            ));
        };
        for class in TrafficClass::all() {
            let p = self.class(class);
            if !p.is_zero() {
                row(class.label(), p);
            }
        }
        let total = self.total();
        row("total", &total);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_classes_and_phases() {
        let mut a = TimeAttribution::default();
        assert!(a.is_zero());
        a.class_mut(TrafficClass::Interactive).queued_s = 1.0;
        a.class_mut(TrafficClass::Interactive).decode_s = 2.0;
        a.class_mut(TrafficClass::BestEffort).prefill_s = 4.0;
        assert!(!a.is_zero());
        assert_eq!(a.total().total_s(), 7.0);
        assert_eq!(a.class(TrafficClass::Standard).total_s(), 0.0);

        let mut b = TimeAttribution::default();
        b.class_mut(TrafficClass::Interactive).queued_s = 0.5;
        b.class_mut(TrafficClass::Standard).downtime_s = 1.5;
        a.add(&b);
        assert_eq!(a.interactive.queued_s, 1.5);
        assert_eq!(a.standard.downtime_s, 1.5);
        assert_eq!(a.total().total_s(), 9.0);
    }

    #[test]
    fn markdown_table_skips_zero_classes() {
        let mut a = TimeAttribution::default();
        a.class_mut(TrafficClass::Standard).decode_s = 3.0;
        let table = a.markdown_table();
        assert!(table.contains("| standard |"));
        assert!(!table.contains("| interactive |"));
        assert!(table.contains("| total |"));
    }
}
