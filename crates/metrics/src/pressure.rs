//! Memory-pressure counters.
//!
//! One [`PressureStats`] record accumulates everything the memory-pressure
//! subsystem did during a run: preempt-and-recompute evictions, swap
//! traffic over the PCIe host link, and the time requests spent stalled
//! behind those transfers. A run that never crossed a pressure watermark
//! reports the all-zero record — the observable half of the subsystem's
//! zero-cost-when-disabled invariant.

use serde::{Deserialize, Serialize};

/// Counters of memory-pressure activity for one run (or one fleet replica).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PressureStats {
    /// Preempt-and-recompute evictions performed (distinct from per-record
    /// `preemptions`, which also counts decode migrations).
    pub preemptions: u64,
    /// Requests evicted to the host tier.
    pub swap_out_events: u64,
    /// Requests restored from the host tier.
    pub swap_in_events: u64,
    /// Bytes moved device→host.
    pub swap_out_bytes: f64,
    /// Bytes moved host→device.
    pub swap_in_bytes: f64,
    /// Total simulated time requests spent stalled behind swap transfers,
    /// in seconds.
    pub swap_stall_s: f64,
    /// High-water mark of tokens simultaneously parked on the host tier.
    pub max_outstanding_swapped_tokens: u64,
}

impl PressureStats {
    /// Returns true if the run experienced no pressure activity at all.
    pub fn is_zero(&self) -> bool {
        *self == PressureStats::default()
    }

    /// Total bytes moved over the host link in both directions.
    pub fn swap_bytes_total(&self) -> f64 {
        self.swap_out_bytes + self.swap_in_bytes
    }

    /// Accumulates another record into this one (fleet rollups). Counters
    /// and bytes sum; the outstanding-swapped high-water mark takes the
    /// maximum, since replicas own disjoint host pools.
    pub fn merge(&mut self, other: &PressureStats) {
        self.preemptions += other.preemptions;
        self.swap_out_events += other.swap_out_events;
        self.swap_in_events += other.swap_in_events;
        self.swap_out_bytes += other.swap_out_bytes;
        self.swap_in_bytes += other.swap_in_bytes;
        self.swap_stall_s += other.swap_stall_s;
        self.max_outstanding_swapped_tokens = self
            .max_outstanding_swapped_tokens
            .max(other.max_outstanding_swapped_tokens);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PressureStats {
        PressureStats {
            preemptions: 2,
            swap_out_events: 3,
            swap_in_events: 3,
            swap_out_bytes: 10.0,
            swap_in_bytes: 10.0,
            swap_stall_s: 0.5,
            max_outstanding_swapped_tokens: 1_000,
        }
    }

    #[test]
    fn default_is_zero() {
        assert!(PressureStats::default().is_zero());
        assert!(!sample().is_zero());
    }

    #[test]
    fn merge_sums_counters_and_maxes_watermark() {
        let mut a = sample();
        let mut b = sample();
        b.max_outstanding_swapped_tokens = 5_000;
        a.merge(&b);
        assert_eq!(a.preemptions, 4);
        assert_eq!(a.swap_out_events, 6);
        assert_eq!(a.swap_bytes_total(), 40.0);
        assert_eq!(a.max_outstanding_swapped_tokens, 5_000);
    }
}
