//! Repository automation tasks (`cargo run -p xtask -- <task>`).
//!
//! Currently one task:
//!
//! * `bench-gate <BENCH_*.json>` — the perf-regression gate. Reads a
//!   bench's `--smoke` output from stdin, extracts its `BENCH_SMOKE_JSON`
//!   line (one JSON object of deterministic, wall-clock-free metrics),
//!   and compares every metric named by the reference file's
//!   `smoke_gate.metrics` object within `smoke_gate.tolerance` relative
//!   tolerance (±25% by default; a zero reference admits only zero). The
//!   delta table is always printed; any violation fails the process, which
//!   fails `ci.sh` and the GitHub workflow.
//!
//! Only simulated quantities (completed counts, iterations, simulated
//! seconds, token counts) are gated — wall-clock throughput varies across
//! runners far beyond any useful tolerance and stays report-only.

use serde::Value;
use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [task, reference] if task == "bench-gate" => bench_gate(reference),
        _ => {
            eprintln!(
                "usage: cargo run -p xtask -- bench-gate <BENCH_*.json>  (smoke output on stdin)"
            );
            ExitCode::from(2)
        }
    }
}

/// Reads a `Value::Map` field, failing with a readable message.
fn get<'a>(value: &'a Value, key: &str, context: &str) -> Result<&'a Value, String> {
    value
        .get(key)
        .ok_or_else(|| format!("{context}: missing key `{key}`"))
}

/// Numeric view of a JSON value (u64/i64/f64).
fn as_number(value: &Value) -> Option<f64> {
    match value {
        Value::U64(v) => Some(*v as f64),
        Value::I64(v) => Some(*v as f64),
        Value::F64(v) => Some(*v),
        _ => None,
    }
}

fn bench_gate(reference_path: &str) -> ExitCode {
    match bench_gate_inner(reference_path) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("bench-gate: {message}");
            ExitCode::FAILURE
        }
    }
}

fn bench_gate_inner(reference_path: &str) -> Result<(), String> {
    let reference_text = std::fs::read_to_string(reference_path)
        .map_err(|e| format!("cannot read {reference_path}: {e}"))?;
    let reference = serde_json::parse_value(&reference_text)
        .map_err(|e| format!("{reference_path} is not valid JSON: {e:?}"))?;
    let gate = get(&reference, "smoke_gate", reference_path)?;
    let tolerance = as_number(get(gate, "tolerance", "smoke_gate")?)
        .ok_or_else(|| "smoke_gate.tolerance must be a number".to_string())?;
    let Value::Map(metrics) = get(gate, "metrics", "smoke_gate")? else {
        return Err("smoke_gate.metrics must be an object".to_string());
    };

    let mut stdin = String::new();
    std::io::stdin()
        .read_to_string(&mut stdin)
        .map_err(|e| format!("cannot read smoke output from stdin: {e}"))?;
    let json_line = stdin
        .lines()
        .rev()
        .find_map(|l| l.trim().strip_prefix("BENCH_SMOKE_JSON "))
        .ok_or_else(|| "no BENCH_SMOKE_JSON line found in smoke output".to_string())?;
    let actuals = serde_json::parse_value(json_line)
        .map_err(|e| format!("BENCH_SMOKE_JSON payload is not valid JSON: {e:?}"))?;

    let bench = match actuals.get("benchmark") {
        Some(Value::Str(s)) => s.clone(),
        _ => "<unnamed>".to_string(),
    };
    println!(
        "bench-gate: {bench} vs {reference_path} (tolerance ±{:.0}%)",
        tolerance * 100.0
    );
    println!(
        "{:>24} {:>14} {:>14} {:>9}  verdict",
        "metric", "reference", "actual", "delta"
    );

    let mut failures = 0usize;
    for (name, expected) in metrics {
        let expected = as_number(expected)
            .ok_or_else(|| format!("smoke_gate.metrics.{name} must be a number"))?;
        let Some(actual) = actuals.get(name).and_then(as_number) else {
            println!(
                "{name:>24} {expected:>14.3} {:>14} {:>9}  FAIL (missing)",
                "-", "-"
            );
            failures += 1;
            continue;
        };
        // Relative tolerance against the reference; a zero reference (e.g.
        // `unfinished`) admits only an exact zero.
        let allowed = tolerance * expected.abs();
        let delta = actual - expected;
        let ok = delta.abs() <= allowed;
        let delta_pct = if expected != 0.0 {
            format!("{:+.1}%", delta / expected * 100.0)
        } else if delta == 0.0 {
            "+0.0%".to_string()
        } else {
            "inf".to_string()
        };
        println!(
            "{name:>24} {expected:>14.3} {actual:>14.3} {delta_pct:>9}  {}",
            if ok { "ok" } else { "FAIL" }
        );
        if !ok {
            failures += 1;
        }
    }
    if failures > 0 {
        return Err(format!(
            "{failures} metric(s) regressed beyond ±{:.0}% of {reference_path}",
            tolerance * 100.0
        ));
    }
    println!("bench-gate: all metrics within tolerance");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_convert_and_strings_do_not() {
        assert_eq!(as_number(&Value::U64(3)), Some(3.0));
        assert_eq!(as_number(&Value::I64(-2)), Some(-2.0));
        assert_eq!(as_number(&Value::F64(1.5)), Some(1.5));
        assert_eq!(as_number(&Value::Str("x".into())), None);
    }
}
