//! Repository automation tasks (`cargo run -p xtask -- <task>`).
//!
//! Two tasks:
//!
//! * `bench-gate <BENCH_*.json>` — the perf-regression gate. Reads a
//!   bench's `--smoke` output from stdin, extracts its `BENCH_SMOKE_JSON`
//!   line (one JSON object of deterministic, wall-clock-free metrics),
//!   and compares every metric named by the reference file's
//!   `smoke_gate.metrics` object within `smoke_gate.tolerance` relative
//!   tolerance (±25% by default; a zero reference admits only zero). The
//!   delta table is always printed; any violation fails the process, which
//!   fails `ci.sh` and the GitHub workflow.
//!
//! * `trace-check <trace.perfetto.json>` — the exported-trace validator.
//!   Parses a Chrome trace-event document produced by
//!   [`loong_trace::perfetto_json`], then checks the structural invariants
//!   the exporter promises: every event is a well-formed `"X"` (complete
//!   span) or `"i"` (instant) record, durations are non-negative, the
//!   global stream is sorted by timestamp, spans of the same request on
//!   the same replica never overlap, and the `otherData` counts match the
//!   events actually present (span count, distinct sampled requests,
//!   instant count) — the cross-validation hook against the recorder's
//!   `TraceLedger`.
//!
//! Only simulated quantities (completed counts, iterations, simulated
//! seconds, token counts) are gated — wall-clock throughput varies across
//! runners far beyond any useful tolerance and stays report-only.

use serde::Value;
use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [task, reference] if task == "bench-gate" => bench_gate(reference),
        [task, trace] if task == "trace-check" => trace_check(trace),
        _ => {
            eprintln!(
                "usage: cargo run -p xtask -- bench-gate <BENCH_*.json>  (smoke output on stdin)\n\
                 \x20      cargo run -p xtask -- trace-check <trace.perfetto.json>"
            );
            ExitCode::from(2)
        }
    }
}

/// Reads a `Value::Map` field, failing with a readable message.
fn get<'a>(value: &'a Value, key: &str, context: &str) -> Result<&'a Value, String> {
    value
        .get(key)
        .ok_or_else(|| format!("{context}: missing key `{key}`"))
}

/// Numeric view of a JSON value (u64/i64/f64).
fn as_number(value: &Value) -> Option<f64> {
    match value {
        Value::U64(v) => Some(*v as f64),
        Value::I64(v) => Some(*v as f64),
        Value::F64(v) => Some(*v),
        _ => None,
    }
}

fn bench_gate(reference_path: &str) -> ExitCode {
    match bench_gate_inner(reference_path) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("bench-gate: {message}");
            ExitCode::FAILURE
        }
    }
}

fn bench_gate_inner(reference_path: &str) -> Result<(), String> {
    let reference_text = std::fs::read_to_string(reference_path)
        .map_err(|e| format!("cannot read {reference_path}: {e}"))?;
    let reference = serde_json::parse_value(&reference_text)
        .map_err(|e| format!("{reference_path} is not valid JSON: {e:?}"))?;
    let gate = get(&reference, "smoke_gate", reference_path)?;
    let tolerance = as_number(get(gate, "tolerance", "smoke_gate")?)
        .ok_or_else(|| "smoke_gate.tolerance must be a number".to_string())?;
    let Value::Map(metrics) = get(gate, "metrics", "smoke_gate")? else {
        return Err("smoke_gate.metrics must be an object".to_string());
    };

    let mut stdin = String::new();
    std::io::stdin()
        .read_to_string(&mut stdin)
        .map_err(|e| format!("cannot read smoke output from stdin: {e}"))?;
    let json_line = stdin
        .lines()
        .rev()
        .find_map(|l| l.trim().strip_prefix("BENCH_SMOKE_JSON "))
        .ok_or_else(|| "no BENCH_SMOKE_JSON line found in smoke output".to_string())?;
    let actuals = serde_json::parse_value(json_line)
        .map_err(|e| format!("BENCH_SMOKE_JSON payload is not valid JSON: {e:?}"))?;

    let bench = match actuals.get("benchmark") {
        Some(Value::Str(s)) => s.clone(),
        _ => "<unnamed>".to_string(),
    };
    println!(
        "bench-gate: {bench} vs {reference_path} (tolerance ±{:.0}%)",
        tolerance * 100.0
    );
    println!(
        "{:>24} {:>14} {:>14} {:>9}  verdict",
        "metric", "reference", "actual", "delta"
    );

    let mut failures = 0usize;
    for (name, expected) in metrics {
        let expected = as_number(expected)
            .ok_or_else(|| format!("smoke_gate.metrics.{name} must be a number"))?;
        let Some(actual) = actuals.get(name).and_then(as_number) else {
            println!(
                "{name:>24} {expected:>14.3} {:>14} {:>9}  FAIL (missing)",
                "-", "-"
            );
            failures += 1;
            continue;
        };
        // Relative tolerance against the reference; a zero reference (e.g.
        // `unfinished`) admits only an exact zero.
        let allowed = tolerance * expected.abs();
        let delta = actual - expected;
        let ok = delta.abs() <= allowed;
        let delta_pct = if expected != 0.0 {
            format!("{:+.1}%", delta / expected * 100.0)
        } else if delta == 0.0 {
            "+0.0%".to_string()
        } else {
            "inf".to_string()
        };
        println!(
            "{name:>24} {expected:>14.3} {actual:>14.3} {delta_pct:>9}  {}",
            if ok { "ok" } else { "FAIL" }
        );
        if !ok {
            failures += 1;
        }
    }
    if failures > 0 {
        return Err(format!(
            "{failures} metric(s) regressed beyond ±{:.0}% of {reference_path}",
            tolerance * 100.0
        ));
    }
    println!("bench-gate: all metrics within tolerance");
    Ok(())
}

fn trace_check(trace_path: &str) -> ExitCode {
    match trace_check_inner(trace_path) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("trace-check: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Timestamps render with fixed 3-decimal microsecond precision; span
/// endpoints and durations are rounded independently, so adjacency checks
/// allow a couple of ulps of that grid.
const TS_EPSILON_US: f64 = 0.01;

fn trace_check_inner(trace_path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(trace_path)
        .map_err(|e| format!("cannot read {trace_path}: {e}"))?;
    let doc = serde_json::parse_value(&text)
        .map_err(|e| format!("{trace_path} is not valid JSON: {e:?}"))?;

    let other = get(&doc, "otherData", trace_path)?;
    let expect = |key: &str| -> Result<u64, String> {
        as_number(get(other, key, "otherData")?)
            .map(|v| v as u64)
            .ok_or_else(|| format!("otherData.{key} must be a number"))
    };
    let expected_spans = expect("spans")?;
    let expected_span_requests = expect("span_requests")?;
    let expected_instants = expect("instants")?;

    let Value::Seq(events) = get(&doc, "traceEvents", trace_path)? else {
        return Err("traceEvents must be an array".to_string());
    };

    let field = |event: &Value, key: &str, idx: usize| -> Result<f64, String> {
        event
            .get(key)
            .and_then(as_number)
            .ok_or_else(|| format!("traceEvents[{idx}]: missing numeric `{key}`"))
    };

    let mut spans = 0u64;
    let mut instants = 0u64;
    let mut span_requests = std::collections::BTreeSet::new();
    // Per (pid, tid): end of the last span, for the non-overlap check.
    let mut open_ends: std::collections::BTreeMap<(u64, u64), f64> =
        std::collections::BTreeMap::new();
    // The exporter writes all spans (sorted by start) then all instants
    // (sorted by time): each block must be monotone on its own clock.
    let mut last_span_ts = f64::NEG_INFINITY;
    let mut last_instant_ts = f64::NEG_INFINITY;
    for (idx, event) in events.iter().enumerate() {
        let Some(Value::Str(ph)) = event.get("ph") else {
            return Err(format!("traceEvents[{idx}]: missing `ph`"));
        };
        match event.get("name") {
            Some(Value::Str(_)) => {}
            _ => return Err(format!("traceEvents[{idx}]: missing `name`")),
        }
        let ts = field(event, "ts", idx)?;
        let last_ts = if ph.as_str() == "i" {
            &mut last_instant_ts
        } else {
            &mut last_span_ts
        };
        if ts < *last_ts - TS_EPSILON_US {
            return Err(format!(
                "traceEvents[{idx}]: timestamps not monotone ({ts} after {last_ts})"
            ));
        }
        *last_ts = last_ts.max(ts);
        match ph.as_str() {
            "X" => {
                spans += 1;
                let dur = field(event, "dur", idx)?;
                if dur < 0.0 {
                    return Err(format!("traceEvents[{idx}]: negative duration {dur}"));
                }
                let pid = field(event, "pid", idx)? as u64;
                let tid = field(event, "tid", idx)? as u64;
                span_requests.insert(tid);
                if let Some(&prev_end) = open_ends.get(&(pid, tid)) {
                    if ts < prev_end - TS_EPSILON_US {
                        return Err(format!(
                            "traceEvents[{idx}]: request {tid} on replica {pid} overlaps \
                             its previous span (starts {ts} before {prev_end})"
                        ));
                    }
                }
                open_ends.insert((pid, tid), ts + dur);
            }
            "i" => {
                instants += 1;
                field(event, "pid", idx)?;
            }
            other => return Err(format!("traceEvents[{idx}]: unexpected phase `{other}`")),
        }
    }

    let check_count = |label: &str, expected: u64, actual: u64| -> Result<(), String> {
        if expected != actual {
            return Err(format!(
                "otherData.{label} says {expected} but the document holds {actual}"
            ));
        }
        Ok(())
    };
    check_count("spans", expected_spans, spans)?;
    check_count(
        "span_requests",
        expected_span_requests,
        span_requests.len() as u64,
    )?;
    check_count("instants", expected_instants, instants)?;

    println!(
        "trace-check: {trace_path} ok — {spans} spans over {} sampled requests, \
         {instants} instants, timestamps monotone, no per-request overlap",
        span_requests.len()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_convert_and_strings_do_not() {
        assert_eq!(as_number(&Value::U64(3)), Some(3.0));
        assert_eq!(as_number(&Value::I64(-2)), Some(-2.0));
        assert_eq!(as_number(&Value::F64(1.5)), Some(1.5));
        assert_eq!(as_number(&Value::Str("x".into())), None);
    }
}
