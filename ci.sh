#!/usr/bin/env bash
# The full verification gate for LoongServe-RS. Run from the repo root.
#
#   ./ci.sh          # everything: build, tests, bench compile, clippy, fmt
#   ./ci.sh quick    # just the tier-1 gate: release build + tests
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n==> %s\n' "$*"; }

step "cargo build --release"
cargo build --release

step "cargo test -q"
cargo test -q

if [[ "${1:-}" == "quick" ]]; then
    echo "quick gate passed"
    exit 0
fi

step "cargo bench --no-run (all figure/microbench targets compile)"
cargo bench --no-run

step "engine-scaling perf smoke (1k-request trace)"
# Fails if the bench does not complete or stops printing its summary line;
# the printed simulated-requests-per-wall-second makes regressions visible
# in CI logs. Reference numbers live in BENCH_engine.json.
smoke_out=$(cargo bench --bench engine_scaling -- --smoke)
printf '%s\n' "$smoke_out"
printf '%s\n' "$smoke_out" | grep -q "^ENGINE_SCALING requests=1000"

step "fleet-scaling perf smoke (800-request trace, 1 and 2 replicas)"
# Mirrors the engine smoke: fails if the fleet bench stops printing its
# 2-replica summary line. Reference numbers live in BENCH_fleet.json.
fleet_out=$(cargo bench --bench fleet_scaling -- --smoke)
printf '%s\n' "$fleet_out"
printf '%s\n' "$fleet_out" | grep -q "^FLEET_SCALING replicas=2"

step "kv-pressure smoke (120-request MMPP overload, both victim policies)"
# Fails if either policy stops printing its summary line or leaves requests
# unfinished (the no-deadlock/livelock property). Reference numbers live in
# BENCH_pressure.json.
pressure_out=$(cargo bench --bench kv_pressure -- --smoke)
printf '%s\n' "$pressure_out"
printf '%s\n' "$pressure_out" | grep -q "^KV_PRESSURE policy=recompute .*unfinished=0"
printf '%s\n' "$pressure_out" | grep -q "^KV_PRESSURE policy=swap .*unfinished=0"

step "cargo build --examples"
cargo build --examples

step "cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

step "cargo fmt --check"
cargo fmt --check

echo
echo "ci.sh: all gates passed"
