#!/usr/bin/env bash
# The full verification gate for LoongServe-RS. Run from the repo root.
#
#   ./ci.sh          # everything: build, tests, bench compile, clippy, fmt
#   ./ci.sh quick    # just the tier-1 gate: release build + tests
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n==> %s\n' "$*"; }

step "cargo build --release"
cargo build --release

step "cargo test -q"
cargo test -q

if [[ "${1:-}" == "quick" ]]; then
    echo "quick gate passed"
    exit 0
fi

step "cargo bench --no-run (all 9 figure/microbench targets compile)"
cargo bench --no-run

step "cargo build --examples"
cargo build --examples

step "cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

step "cargo fmt --check"
cargo fmt --check

echo
echo "ci.sh: all gates passed"
