#!/usr/bin/env bash
# The full verification gate for LoongServe-RS. Run from the repo root.
#
#   ./ci.sh          # everything: build, tests, bench gates, examples, clippy, fmt
#   ./ci.sh quick    # just the tier-1 gate: release build + tests
#
# Every cargo invocation passes --locked so a drifted Cargo.lock fails loudly
# instead of being silently regenerated, and the lockfile is checked for
# byte-identity at the end. The perf smokes are gated machine-readably: each
# bench's --smoke mode emits one BENCH_SMOKE_JSON line of deterministic
# metrics that `cargo run -p xtask -- bench-gate BENCH_*.json` compares
# against the checked-in reference within ±25%, printing the delta table.
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n==> %s\n' "$*"; }

# Guard the lockfile: nothing below may rewrite it.
lock_before=$(mktemp)
cp Cargo.lock "$lock_before"
check_lockfile() {
    if ! cmp -s Cargo.lock "$lock_before"; then
        echo "ci.sh: Cargo.lock changed during the run — commit the updated lockfile" >&2
        exit 1
    fi
}
trap 'rm -f "$lock_before"' EXIT

step "cargo build --release --locked"
cargo build --release --locked

step "cargo test --locked -q"
cargo test --locked -q

if [[ "${1:-}" == "quick" ]]; then
    check_lockfile
    echo "quick gate passed"
    exit 0
fi

step "cargo bench --no-run --locked (all figure/microbench targets compile)"
cargo bench --no-run --locked

step "build the bench gate"
cargo build --release --locked -p xtask

# Runs one perf smoke: executes the bench in --smoke mode, shows its output,
# greps the human summary line (fast failure diagnostics), then feeds the
# BENCH_SMOKE_JSON line to the gate for the ±25% reference comparison.
smoke_gate() {
    local bench="$1" grep_pattern="$2" reference="$3"
    local out
    out=$(cargo bench --locked --bench "$bench" -- --smoke)
    printf '%s\n' "$out"
    printf '%s\n' "$out" | grep -q "$grep_pattern"
    printf '%s\n' "$out" | cargo run -q --release --locked -p xtask -- bench-gate "$reference"
}

step "engine-scaling perf smoke + gate (1k-request trace vs BENCH_engine.json)"
smoke_gate engine_scaling "^ENGINE_SCALING requests=1000" BENCH_engine.json

step "fleet-scaling perf smoke + gate (800-request trace vs BENCH_fleet.json)"
smoke_gate fleet_scaling "^FLEET_SCALING replicas=2" BENCH_fleet.json

step "kv-pressure smoke + gate (120-request MMPP overload vs BENCH_pressure.json)"
smoke_gate kv_pressure "^KV_PRESSURE policy=swap .*unfinished=0" BENCH_pressure.json

step "prefix-cache smoke + gate (100-conversation multi-turn trace vs BENCH_prefix.json)"
smoke_gate prefix_cache "^PREFIX_CACHE .*unfinished=0" BENCH_prefix.json

step "reliability smoke + gate (240-request trace under crashes vs BENCH_reliability.json)"
smoke_gate reliability "^RELIABILITY .*failed_retry=0" BENCH_reliability.json

step "autoscale smoke + gate (280-event diurnal+flash trace vs BENCH_autoscale.json)"
smoke_gate autoscale "^AUTOSCALE .*scale_ups=" BENCH_autoscale.json

step "million-scale smoke + gate (20k-request streamed reliable run vs BENCH_million.json)"
smoke_gate million_scale "^MILLION_SCALE streamed=20000 " BENCH_million.json

step "observability smoke + gate (untraced vs 1%-sampled recorder vs BENCH_obs.json)"
smoke_gate observability "^OBSERVABILITY sampled=" BENCH_obs.json

step "sparse-attention smoke + gate (policy ablation vs BENCH_sparse.json)"
smoke_gate sparse_attention "^SPARSE_ATTENTION policy=page-sparse-decode .*unfinished=0" BENCH_sparse.json

step "trace-check the million-scale smoke's Perfetto export"
cargo run -q --release --locked -p xtask -- trace-check target/million_scale.perfetto.json

step "cargo build --examples --locked"
cargo build --examples --locked

step "run every example (small deterministic configs; a panicking example fails CI)"
for example in quickstart compare_systems elastic_scaling_trace capacity_planning \
               fleet_routing memory_pressure multi_turn_cache failure_injection \
               autoscale_overload trace_export sparse_attention; do
    echo "--- example: $example"
    LOONG_SMOKE=1 cargo run -q --release --locked --example "$example" > /dev/null
done

step "trace-check the trace_export example's Perfetto export"
cargo run -q --release --locked -p xtask -- trace-check target/trace_export.perfetto.json

step "cargo clippy --all-targets --locked -- -D warnings"
cargo clippy --all-targets --locked -- -D warnings

step "cargo fmt --check"
cargo fmt --check

step "Cargo.lock unchanged"
check_lockfile

echo
echo "ci.sh: all gates passed"
